#include "cq/acyclic.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/governor.h"
#include "common/saturating.h"
#include "common/work_pool.h"
#include "cq/canonical.h"
#include "cq/gyo.h"
#include "rel/hash_index.h"
#include "rel/ops.h"
#include "rel/table.h"

namespace cqcs {

namespace {

using rel::HashIndex;
using rel::Table;

/// One Yannakakis run: GYO, per-atom table materialization into the
/// columnar kernel, semijoin reduction, then whichever task phase the
/// caller asks for. After Prepare(/*full_reduce=*/true) every surviving
/// row of every table participates in at least one solution — the
/// invariant all four task phases lean on.
///
/// Parallelism (num_threads > 1): per-atom materialization runs distinct
/// (relation, layout) groups concurrently, the semijoin sweeps and join
/// phase morsel-parallelize inside rel::Semijoin / rel::HashJoinAppend,
/// the count DP splits its per-parent-row loop (disjoint cnt writes), and
/// the match indexes build one-per-node concurrently — all on the shared
/// MorselPool. Every phase merges or checks results at deterministic
/// structural boundaries (atom order, node order, morsel order), so the
/// answer AND the stats (minus workers/steals) match the sequential run
/// byte for byte. The enumeration walk and ProjectDistinct stay
/// sequential: their outputs are defined by global first-occurrence
/// order.
class Yannakakis {
 public:
  Yannakakis(const ConjunctiveQuery& q, const Structure& d,
             YannakakisStats* stats, ResourceGovernor* governor = nullptr,
             unsigned num_threads = 1)
      : q_(q),
        d_(d),
        stats_(stats),
        gov_(governor),
        threads_(ResolveThreadCount(num_threads)) {}

  /// Worker/morsel/steal counters flush on destruction so every entry
  /// point (including error unwinds) reports what actually ran.
  ~Yannakakis() {
    if (stats_ != nullptr) {
      stats_->workers = threads_;
      stats_->morsels += mc_.morsels;
      stats_->steals += mc_.steals;
    }
  }

  /// Validates, runs GYO, materializes, and semijoin-reduces (bottom-up
  /// only for decide; + top-down and match indexes for the full program).
  /// InvalidArgument for cyclic queries / vocabulary mismatch.
  Status Prepare(bool full_reduce);

  /// False when some table emptied: no assignment satisfies the body.
  bool satisfiable() const { return satisfiable_; }

  // The task phases below require Prepare(true) and satisfiable(). Each
  // errors with kResourceExhausted on a governor trip; *out / the return
  // value must then be discarded (the Unknown contract — no torn results).

  /// Appends up to max_results assignments (indexed by VarId) to *out.
  Status Enumerate(size_t max_results, std::vector<std::vector<Element>>* out);

  /// min(#assignments, limit).
  Result<size_t> Count(size_t limit);

  /// Distinct projections onto `proj`, up to max_results.
  Result<std::vector<std::vector<Element>>> Project(
      std::span<const VarId> proj, size_t max_results);

  /// min(#distinct projections onto `proj`, limit) via the same bottom-up
  /// reduction as Project, without assembling the cross product.
  Result<size_t> ProjectCount(std::span<const VarId> proj, size_t limit);

 private:
  Status MaterializeAll();
  /// Materializes atom `i`'s table (a group representative: no memo hit).
  /// Thread-safe against other groups — writes only tables_[i] and the
  /// governor's atomic accounting.
  Status MaterializeGroup(size_t i, const std::vector<uint32_t>& col_of_arg);
  /// The bottom-up join-project pass shared by Project and ProjectCount:
  /// fills r_table/r_cols per node (see Project for the invariants).
  Status ProjectReduce(std::span<const VarId> proj,
                       std::vector<Table>* r_table,
                       std::vector<std::vector<VarId>>* r_cols);
  /// Threading knobs handed to the rel/ operators: shared counter sink,
  /// default morsel size.
  rel::OpParallel Par() { return {threads_, 0, &mc_}; }
  /// Stride poll for the row loops: consults the governor every 1024th
  /// call. Ungoverned runs pay one branch.
  Status PollTick() {
    if (gov_ != nullptr && (++tick_ & 1023) == 0) return gov_->Poll();
    return Status::OK();
  }
  void BumpTable(size_t rows) {
    if (stats_ != nullptr && rows > stats_->max_table_rows) {
      stats_->max_table_rows = rows;
    }
  }
  // Helpers for Enumerate's explicit-stack pre-order walk (one recursion
  // frame per atom would overflow the stack on ~100k-atom sources).
  /// First row of seq_[depth]'s table matching the ancestors in assign_
  /// (all rows for roots), or HashIndex::kNone.
  uint32_t FirstRow(size_t depth);
  /// Next row of seq_[depth]'s table with the same key, or kNone.
  uint32_t NextRow(size_t depth, uint32_t r) const;
  /// Copies row r of seq_[depth]'s table into assign_.
  void WriteRow(size_t depth, uint32_t r);
  /// Appends the isolated-variable expansions of the current assign_;
  /// false once *out reached max_results (aborts the walk).
  bool EmitAssignment(size_t max_results,
                      std::vector<std::vector<Element>>* out);

  const ConjunctiveQuery& q_;
  const Structure& d_;
  YannakakisStats* stats_;
  ResourceGovernor* gov_;
  unsigned threads_ = 1;   // resolved worker count
  MorselCounters mc_;      // merged from every dispatch; flushed in dtor
  uint64_t tick_ = 0;  // PollTick stride counter (single-threaded phases
                       // only — parallel bodies keep a local stride)

  size_t m_ = 0;
  JoinTree tree_;
  std::vector<std::vector<VarId>> vars_;      // per atom, sorted distinct
  std::vector<Table> tables_;                 // columns follow vars_[i]
  std::vector<std::vector<uint32_t>> children_;
  std::vector<uint32_t> roots_;
  std::vector<uint32_t> order_;               // children before parents
  // Shared variables with the parent, ascending; and their column
  // positions on each side (aligned lists).
  std::vector<std::vector<VarId>> shared_vars_;
  std::vector<std::vector<uint32_t>> shared_child_cols_;
  std::vector<std::vector<uint32_t>> shared_parent_cols_;
  // Match index per non-root node, keyed on shared_child_cols_, built
  // over the fully reduced tables (full_reduce only).
  std::vector<HashIndex> match_index_;
  std::vector<VarId> isolated_;               // variables in no atom
  std::vector<Element> assign_;               // Enumerate's scratch
  std::vector<Element> key_scratch_;          // probe-key scratch (the key
                                              // is consumed by FindFirst
                                              // before any recursion, so
                                              // one buffer serves every
                                              // depth)
  std::vector<uint32_t> seq_;                 // forest pre-order
  // Two atoms with the same relation and the same position→column map
  // start from identical tables (canonical queries repeat one pattern per
  // relation across thousands of atoms); materialize once, copy after.
  std::map<std::pair<RelId, std::vector<uint32_t>>, size_t> materialize_memo_;
  bool satisfiable_ = false;
};

Status Yannakakis::Prepare(bool full_reduce) {
  if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->Poll());
  CQCS_RETURN_IF_ERROR(q_.Validate());
  if (!q_.vocabulary()->Equals(*d_.vocabulary())) {
    return Status::InvalidArgument("query/database vocabulary mismatch");
  }
  auto forest = GyoJoinForest(q_.var_count(), QueryHyperedges(q_));
  if (!forest.has_value()) {
    return Status::InvalidArgument("the query's hypergraph is cyclic");
  }
  tree_ = *std::move(forest);
  m_ = q_.atoms().size();
  satisfiable_ = true;

  // Variables outside every atom range freely; find them once.
  std::vector<uint8_t> in_atom(q_.var_count(), 0);
  // cqcs-lint: allow(unpolled-loop): bounded by query shape (atoms * arity), not data
  for (const Atom& atom : q_.atoms()) {
    for (VarId v : atom.args) in_atom[v] = 1;
  }
  for (VarId v = 0; v < q_.var_count(); ++v) {
    if (!in_atom[v]) isolated_.push_back(v);
  }

  vars_.resize(m_);
  tables_.resize(m_);
  CQCS_RETURN_IF_ERROR(MaterializeAll());
  // Emptiness is decided after every atom materialized, in atom order:
  // the same tables (and the same stats) exist at every thread count, and
  // satisfiable_ flips on the same first-empty atom.
  for (size_t i = 0; i < m_; ++i) {
    if (tables_[i].empty()) {
      satisfiable_ = false;
      return Status::OK();
    }
  }

  // Forest shape: children lists, roots, topological order (children
  // first — every node's subtree is fully processed before its parent).
  children_.resize(m_);
  std::vector<uint32_t> pending_children(m_, 0);
  for (uint32_t i = 0; i < m_; ++i) {
    if (tree_.parent[i] == JoinTree::kNoParent) {
      roots_.push_back(i);
    } else {
      children_[tree_.parent[i]].push_back(i);
      ++pending_children[tree_.parent[i]];
    }
  }
  order_.reserve(m_);
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < m_; ++i) {
    if (pending_children[i] == 0) stack.push_back(i);
  }
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    order_.push_back(node);
    uint32_t p = tree_.parent[node];
    if (p != JoinTree::kNoParent && --pending_children[p] == 0) {
      stack.push_back(p);
    }
  }
  CQCS_CHECK(order_.size() == m_);

  // Shared-with-parent variables and their column positions.
  shared_vars_.resize(m_);
  shared_child_cols_.resize(m_);
  shared_parent_cols_.resize(m_);
  // cqcs-lint: allow(unpolled-loop): bounded by query shape (atoms * vars-per-atom), not data
  for (uint32_t node = 0; node < m_; ++node) {
    uint32_t p = tree_.parent[node];
    if (p == JoinTree::kNoParent) continue;
    const auto& cv = vars_[node];
    const auto& pv = vars_[p];
    for (size_t i = 0; i < cv.size(); ++i) {
      auto it = std::lower_bound(pv.begin(), pv.end(), cv[i]);
      if (it != pv.end() && *it == cv[i]) {
        shared_vars_[node].push_back(cv[i]);
        shared_child_cols_[node].push_back(static_cast<uint32_t>(i));
        shared_parent_cols_[node].push_back(
            static_cast<uint32_t>(it - pv.begin()));
      }
    }
  }

  // Bottom-up pass: parent := parent ⋉ child, children first, so every
  // table is final for its own parent's filtering. Governed runs poll
  // once per semijoin — each is one bounded table sweep.
  HashIndex index;
  index.AttachGovernor(gov_);
  for (uint32_t node : order_) {
    uint32_t p = tree_.parent[node];
    if (p == JoinTree::kNoParent) continue;
    if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->Poll());
    index.Build(tables_[node].data(), tables_[node].width(),
                static_cast<uint32_t>(tables_[node].row_count()),
                shared_child_cols_[node]);
    size_t removed =
        rel::Semijoin(tables_[p], shared_parent_cols_[node], tables_[node],
                      index, gov_, Par());
    if (stats_ != nullptr) {
      ++stats_->semijoins;
      stats_->rows_pruned += removed;
    }
    if (tables_[p].empty()) {
      satisfiable_ = false;
      return Status::OK();
    }
  }
  // A trip inside the last semijoin leaves its table untouched rather than
  // reduced — catch it here so satisfiable() is never read off a
  // half-reduced program.
  if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
  if (!full_reduce) return Status::OK();

  // Top-down pass: child := child ⋉ parent, parents first. A parent row
  // always keeps at least one match in each child (the match that let it
  // survive the bottom-up pass also survives here), so no table empties.
  for (size_t i = order_.size(); i-- > 0;) {
    uint32_t node = order_[i];
    for (uint32_t child : children_[node]) {
      if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->Poll());
      index.Build(tables_[node].data(), tables_[node].width(),
                  static_cast<uint32_t>(tables_[node].row_count()),
                  shared_parent_cols_[child]);
      size_t removed = rel::Semijoin(tables_[child],
                                     shared_child_cols_[child],
                                     tables_[node], index, gov_, Par());
      if (stats_ != nullptr) {
        ++stats_->semijoins;
        stats_->rows_pruned += removed;
      }
      if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
      CQCS_CHECK(!tables_[child].empty());
    }
  }

  // Final match indexes for the task phases. Builds are independent per
  // node (disjoint match_index_ slots), so they run as node-range morsels
  // on the shared pool.
  match_index_.resize(m_);
  {
    auto body = [&](unsigned, size_t begin, size_t end) {
      for (size_t node = begin; node < end; ++node) {
        if (tree_.parent[node] == JoinTree::kNoParent) continue;
        if (gov_ != nullptr && !gov_->Poll().ok()) return false;
        match_index_[node].AttachGovernor(gov_);
        match_index_[node].Build(
            tables_[node].data(), tables_[node].width(),
            static_cast<uint32_t>(tables_[node].row_count()),
            shared_child_cols_[node]);
      }
      return true;
    };
    mc_.MergeFrom(MorselPool::Shared().Run(m_, threads_, 64, body));
    if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
  }

  // Forest pre-order for the enumeration walk (parents before children).
  seq_.reserve(m_);
  for (size_t i = order_.size(); i-- > 0;) seq_.push_back(order_[i]);
  if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
  return Status::OK();
}

Status Yannakakis::MaterializeAll() {
  // Pass 1 (sequential, query-shaped): column layouts and memo grouping.
  // col_of_arg determines the initial table completely (it encodes both
  // the column layout and the repeated-variable equalities), so atoms
  // sharing a (relation, map) key form one materialization group —
  // canonical queries repeat one pattern per relation across thousands of
  // atoms.
  std::vector<std::vector<uint32_t>> col_of_arg(m_);
  std::vector<size_t> rep(m_);      // group representative per atom
  std::vector<size_t> group_reps;   // distinct representatives
  // cqcs-lint: allow(unpolled-loop): bounded by query shape (atoms * arity), not data
  for (size_t i = 0; i < m_; ++i) {
    const Atom& atom = q_.atoms()[i];
    std::vector<VarId>& vars = vars_[i];
    vars.assign(atom.args.begin(), atom.args.end());
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    col_of_arg[i].resize(atom.args.size());
    for (size_t p = 0; p < atom.args.size(); ++p) {
      col_of_arg[i][p] = static_cast<uint32_t>(
          std::lower_bound(vars.begin(), vars.end(), atom.args[p]) -
          vars.begin());
    }
    auto [it, inserted] = materialize_memo_.emplace(
        std::make_pair(atom.rel, col_of_arg[i]), i);
    rep[i] = it->second;
    if (inserted) group_reps.push_back(i);
  }

  // Pass 2: materialize the distinct groups. Groups are independent
  // (disjoint tables_ slots, atomic governor accounting), so each runs as
  // a one-group morsel on the shared pool; a governor trip in one cancels
  // the unclaimed rest.
  std::vector<Status> group_status(group_reps.size(), Status::OK());
  auto body = [&](unsigned, size_t begin, size_t end) {
    bool ok = true;
    for (size_t g = begin; g < end; ++g) {
      Status s = MaterializeGroup(group_reps[g], col_of_arg[group_reps[g]]);
      if (!s.ok()) {
        group_status[g] = std::move(s);
        ok = false;
      }
    }
    return ok;
  };
  mc_.MergeFrom(
      MorselPool::Shared().Run(group_reps.size(), threads_, 1, body));
  for (const Status& s : group_status) {
    if (!s.ok()) return s;
  }

  // Pass 3 (sequential, atom order): copy memo hits, accumulate stats.
  for (size_t i = 0; i < m_; ++i) {
    if (rep[i] != i) tables_[i] = tables_[rep[i]];  // re-charges via copy
    if (stats_ != nullptr) {
      ++stats_->atom_tables;
      stats_->rows_materialized += tables_[i].row_count();
    }
    BumpTable(tables_[i].row_count());
  }
  return Status::OK();
}

Status Yannakakis::MaterializeGroup(size_t i,
                                    const std::vector<uint32_t>& col_of_arg) {
  const Atom& atom = q_.atoms()[i];
  const uint32_t width = static_cast<uint32_t>(vars_[i].size());
  tables_[i] = Table(width);
  Table& table = tables_[i];
  table.AttachGovernor(gov_);
  HashIndex dedup;
  dedup.AttachGovernor(gov_);
  std::vector<uint32_t> all_cols(width);
  for (uint32_t c = 0; c < width; ++c) all_cols[c] = c;
  dedup.Reset(width, all_cols);

  const Relation& rel = d_.relation(atom.rel);
  std::vector<Element> row(width);
  uint64_t tick = 0;  // local stride: groups poll concurrently
  for (uint32_t t = 0; t < rel.tuple_count(); ++t) {
    if (gov_ != nullptr && (++tick & 1023) == 0) {
      CQCS_RETURN_IF_ERROR(gov_->Poll());
    }
    std::span<const Element> tup = rel.tuple(t);
    // Repeated variables must see equal values.
    bool ok = true;
    for (size_t p = 0; p < tup.size() && ok; ++p) {
      for (size_t r = p + 1; r < tup.size() && ok; ++r) {
        if (atom.args[p] == atom.args[r] && tup[p] != tup[r]) ok = false;
      }
    }
    if (!ok) continue;
    for (size_t p = 0; p < tup.size(); ++p) row[col_of_arg[p]] = tup[p];
    if (dedup.FindFirst(table.data(), row) != HashIndex::kNone) continue;
    table.AppendRow(row);
    dedup.Add(table.data(), static_cast<uint32_t>(table.row_count() - 1));
  }
  return Status::OK();
}

uint32_t Yannakakis::FirstRow(size_t depth) {
  const uint32_t node = seq_[depth];
  if (tree_.parent[node] == JoinTree::kNoParent) {
    return tables_[node].empty() ? HashIndex::kNone : 0;
  }
  // The parent's values are already in assign_ (parents precede children
  // in seq_); probe the match index with them.
  key_scratch_.clear();
  for (VarId v : shared_vars_[node]) key_scratch_.push_back(assign_[v]);
  return match_index_[node].FindFirst(tables_[node].data(), key_scratch_);
}

uint32_t Yannakakis::NextRow(size_t depth, uint32_t r) const {
  const uint32_t node = seq_[depth];
  if (tree_.parent[node] == JoinTree::kNoParent) {
    return r + 1 < tables_[node].row_count() ? r + 1 : HashIndex::kNone;
  }
  return match_index_[node].Next(r);
}

void Yannakakis::WriteRow(size_t depth, uint32_t r) {
  const uint32_t node = seq_[depth];
  std::span<const Element> row = tables_[node].row(r);
  const auto& vars = vars_[node];
  for (size_t i = 0; i < vars.size(); ++i) assign_[vars[i]] = row[i];
}

bool Yannakakis::EmitAssignment(size_t max_results,
                                std::vector<std::vector<Element>>* out) {
  // All tree variables fixed; expand the isolated ones (every value
  // works) with an odometer over the universe.
  const size_t n = d_.universe_size();
  for (VarId v : isolated_) assign_[v] = 0;
  while (true) {
    // A governor trip aborts the walk; the caller turns it into a
    // kResourceExhausted status via the sticky trip state.
    if (!PollTick().ok()) return false;
    out->push_back(assign_);
    if (out->size() >= max_results) return false;
    size_t k = 0;
    while (k < isolated_.size() &&
           ++assign_[isolated_[k]] == static_cast<Element>(n)) {
      assign_[isolated_[k]] = 0;
      ++k;
    }
    if (k == isolated_.size()) return true;
  }
}

Status Yannakakis::Enumerate(size_t max_results,
                             std::vector<std::vector<Element>>* out) {
  CQCS_CHECK(satisfiable_);
  // Every return path reports a governor trip, including the ones where
  // EmitAssignment aborted the walk from inside.
  auto trip_status = [this]() {
    return gov_ != nullptr ? gov_->TripStatus() : Status::OK();
  };
  if (max_results == 0) return trip_status();
  if (d_.universe_size() == 0 && q_.var_count() > 0) return trip_status();
  assign_.assign(q_.var_count(), 0);
  const size_t depth_total = seq_.size();
  if (depth_total == 0) {
    EmitAssignment(max_results, out);
    return trip_status();
  }
  // Explicit-stack pre-order walk over seq_: cur[d] is the current row of
  // seq_[d]'s table; the match chain makes that one uint32 the entire
  // per-depth state, so arbitrarily deep forests cost heap, not stack.
  // Backtracking to depth d never re-probes: NextRow follows the chain,
  // and the ancestors' assign_ values it was keyed on are untouched.
  std::vector<uint32_t> cur(depth_total);
  size_t d = 0;
  bool descending = true;
  while (true) {
    CQCS_RETURN_IF_ERROR(PollTick());
    cur[d] = descending ? FirstRow(d) : NextRow(d, cur[d]);
    if (cur[d] == HashIndex::kNone) {
      if (d == 0) return trip_status();
      --d;
      descending = false;
      continue;
    }
    WriteRow(d, cur[d]);
    if (d + 1 == depth_total) {
      if (!EmitAssignment(max_results, out)) return trip_status();
      descending = false;  // advance this depth's chain
    } else {
      ++d;
      descending = true;
    }
  }
}

Result<size_t> Yannakakis::Count(size_t limit) {
  CQCS_CHECK(satisfiable_);
  // Bottom-up product/sum DP: cnt[node][r] = number of assignments of
  // node's subtree variables extending row r. The (node, child) order is
  // a data dependency; the per-parent-row loop inside one pair is not —
  // each row r writes only cnt[node][r] — so it splits into row morsels.
  // Saturation makes each cnt entry depend only on the child's finished
  // column, never on neighbors, so the parallel result is bitwise the
  // sequential one.
  std::vector<std::vector<size_t>> cnt(m_);
  for (uint32_t node : order_) {
    const Table& table = tables_[node];
    cnt[node].assign(table.row_count(), 1);
    for (uint32_t child : children_[node]) {
      const Table& ct = tables_[child];
      auto body = [&](unsigned, size_t begin, size_t end) {
        std::vector<Element> key;
        for (size_t r = begin; r < end; ++r) {
          if (gov_ != nullptr && ((r - begin) & 1023) == 0 &&
              !gov_->Poll().ok()) {
            return false;
          }
          std::span<const Element> row = table.row(r);
          key.clear();
          for (uint32_t c : shared_parent_cols_[child]) key.push_back(row[c]);
          size_t sum = 0;
          for (uint32_t s = match_index_[child].FindFirst(ct.data(), key);
               s != HashIndex::kNone; s = match_index_[child].Next(s)) {
            sum = SatAdd(sum, cnt[child][s], limit);
          }
          cnt[node][r] = SatMul(cnt[node][r], sum, limit);
        }
        return true;
      };
      mc_.MergeFrom(
          MorselPool::Shared().Run(table.row_count(), threads_, 0, body));
      if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
    }
  }
  size_t total = 1;
  // cqcs-lint: allow(unpolled-loop): one flat sum per root table row; the materialization that sized cnt was charged
  for (uint32_t root : roots_) {
    size_t tree_total = 0;
    for (size_t c : cnt[root]) tree_total = SatAdd(tree_total, c, limit);
    total = SatMul(total, tree_total, limit);
  }
  for (size_t k = 0; k < isolated_.size(); ++k) {
    total = SatMul(total, d_.universe_size(), limit);
  }
  return total;
}

Status Yannakakis::ProjectReduce(std::span<const VarId> proj,
                                 std::vector<Table>* r_table,
                                 std::vector<std::vector<VarId>>* r_cols) {
  std::vector<uint8_t> in_proj(q_.var_count(), 0);
  for (VarId v : proj) in_proj[v] = 1;

  // Bottom-up join-project: R[node] holds the distinct projections of
  // node's subtree joins onto (projection vars of the subtree) ∪
  // (connector vars to the parent). Intermediates never hold a column
  // that neither the output nor a later join needs, which is what keeps
  // them output-bounded. The joins morsel-parallelize inside
  // HashJoinAppend; the per-node dedup stays sequential (first-occurrence
  // order defines it).
  HashIndex index, scratch;
  index.AttachGovernor(gov_);
  scratch.AttachGovernor(gov_);
  for (uint32_t node : order_) {
    Table cur = tables_[node];  // governed copy: inherits the attachment
    std::vector<VarId> cur_cols = vars_[node];
    for (uint32_t child : children_[node]) {
      if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->Poll());
      // Join on the connector variables; pull in the child's accumulated
      // projection columns. A projection variable below the child that
      // also occurs above it must occur in the child's bag too (running
      // intersection), so the extras are always fresh columns.
      const std::vector<VarId>& shared = shared_vars_[child];
      std::vector<uint32_t> left_key, right_key, extras;
      std::vector<VarId> extra_vars;
      for (VarId v : shared) {
        left_key.push_back(static_cast<uint32_t>(
            std::find(cur_cols.begin(), cur_cols.end(), v) -
            cur_cols.begin()));
      }
      for (size_t i = 0; i < (*r_cols)[child].size(); ++i) {
        VarId v = (*r_cols)[child][i];
        if (std::find(shared.begin(), shared.end(), v) != shared.end()) {
          continue;
        }
        extras.push_back(static_cast<uint32_t>(i));
        extra_vars.push_back(v);
      }
      for (VarId v : shared) {
        right_key.push_back(static_cast<uint32_t>(
            std::find((*r_cols)[child].begin(), (*r_cols)[child].end(), v) -
            (*r_cols)[child].begin()));
      }
      index.Build((*r_table)[child].data(), (*r_table)[child].width(),
                  static_cast<uint32_t>((*r_table)[child].row_count()),
                  right_key);
      Table next(static_cast<uint32_t>(cur.width() + extras.size()));
      next.AttachGovernor(gov_);
      rel::HashJoinAppend(cur, left_key, (*r_table)[child], index, extras,
                          &next, gov_, Par());
      cur = std::move(next);
      cur_cols.insert(cur_cols.end(), extra_vars.begin(), extra_vars.end());
      if (stats_ != nullptr) stats_->join_rows += cur.row_count();
      BumpTable(cur.row_count());
    }
    // Keep projection columns plus the connector to the parent.
    std::vector<uint32_t> keep_cols;
    std::vector<VarId> keep_vars;
    for (size_t i = 0; i < cur_cols.size(); ++i) {
      VarId v = cur_cols[i];
      bool keep = in_proj[v];
      if (!keep && tree_.parent[node] != JoinTree::kNoParent) {
        const std::vector<VarId>& shared = shared_vars_[node];
        keep = std::find(shared.begin(), shared.end(), v) != shared.end();
      }
      if (keep) {
        keep_cols.push_back(static_cast<uint32_t>(i));
        keep_vars.push_back(v);
      }
    }
    (*r_table)[node] = Table(static_cast<uint32_t>(keep_cols.size()));
    (*r_table)[node].AttachGovernor(gov_);
    rel::ProjectDistinct(cur, keep_cols, &(*r_table)[node], &scratch,
                         SIZE_MAX, gov_);
    (*r_cols)[node] = std::move(keep_vars);
    BumpTable((*r_table)[node].row_count());
    if (gov_ != nullptr) CQCS_RETURN_IF_ERROR(gov_->TripStatus());
  }
  return Status::OK();
}

Result<std::vector<std::vector<Element>>> Yannakakis::Project(
    std::span<const VarId> proj, size_t max_results) {
  CQCS_CHECK(satisfiable_);
  std::vector<std::vector<Element>> results;
  if (max_results == 0) return results;
  if (d_.universe_size() == 0 && q_.var_count() > 0) return results;

  std::vector<uint8_t> in_proj(q_.var_count(), 0);
  for (VarId v : proj) in_proj[v] = 1;

  std::vector<Table> r_table(m_);
  std::vector<std::vector<VarId>> r_cols(m_);
  CQCS_RETURN_IF_ERROR(ProjectReduce(proj, &r_table, &r_cols));

  // Assemble output rows: a cross product over the per-tree results and
  // the isolated projection variables (each tree's rows are distinct on
  // projection variables only, so every combination is a distinct row).
  std::vector<VarId> iso_proj;
  for (VarId v : isolated_) {
    if (in_proj[v]) iso_proj.push_back(v);
  }
  std::vector<Element> value_of(q_.var_count(), 0);
  std::vector<size_t> root_row(roots_.size(), 0);
  std::vector<Element> iso_val(iso_proj.size(), 0);
  std::vector<Element> out_row(proj.size());
  while (true) {
    CQCS_RETURN_IF_ERROR(PollTick());
    for (size_t t = 0; t < roots_.size(); ++t) {
      const Table& rt = r_table[roots_[t]];
      std::span<const Element> row = rt.row(root_row[t]);
      const auto& cols = r_cols[roots_[t]];
      for (size_t i = 0; i < cols.size(); ++i) value_of[cols[i]] = row[i];
    }
    for (size_t i = 0; i < iso_proj.size(); ++i) {
      value_of[iso_proj[i]] = iso_val[i];
    }
    for (size_t i = 0; i < proj.size(); ++i) out_row[i] = value_of[proj[i]];
    results.push_back(out_row);
    if (results.size() >= max_results) break;
    // Odometer: isolated values first, then per-tree rows.
    size_t k = 0;
    while (k < iso_val.size() &&
           ++iso_val[k] == static_cast<Element>(d_.universe_size())) {
      iso_val[k] = 0;
      ++k;
    }
    if (k < iso_val.size()) continue;
    size_t t = 0;
    while (t < roots_.size() &&
           ++root_row[t] == r_table[roots_[t]].row_count()) {
      root_row[t] = 0;
      ++t;
    }
    if (t == roots_.size()) break;
  }
  return results;
}

Result<size_t> Yannakakis::ProjectCount(std::span<const VarId> proj,
                                        size_t limit) {
  CQCS_CHECK(satisfiable_);
  if (limit == 0) return size_t{0};
  if (d_.universe_size() == 0 && q_.var_count() > 0) return size_t{0};

  std::vector<Table> r_table(m_);
  std::vector<std::vector<VarId>> r_cols(m_);
  CQCS_RETURN_IF_ERROR(ProjectReduce(proj, &r_table, &r_cols));

  // No cross-product assembly: a root's reduced table is exactly the
  // distinct projections of its tree's variables (its connector set is
  // empty), trees share no projection variables, and isolated projection
  // variables range freely — so the count is a plain saturated product.
  std::vector<uint8_t> in_proj(q_.var_count(), 0);
  for (VarId v : proj) in_proj[v] = 1;
  size_t total = 1;
  for (uint32_t root : roots_) {
    total = SatMul(total, r_table[root].row_count(), limit);
  }
  for (VarId v : isolated_) {
    if (in_proj[v]) total = SatMul(total, d_.universe_size(), limit);
  }
  return total;
}

}  // namespace

bool IsAcyclicQuery(const ConjunctiveQuery& q) {
  return GyoJoinForest(q.var_count(), QueryHyperedges(q)).has_value();
}

Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& q) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  auto tree = GyoJoinForest(q.var_count(), QueryHyperedges(q));
  if (!tree.has_value()) {
    return Status::InvalidArgument("the query's hypergraph is cyclic");
  }
  return *std::move(tree);
}

namespace {

/// Final trip check for the entry points: a charge-only trip in the last
/// poll stride must still surface as kResourceExhausted, never as a
/// normal-looking answer computed under a blown budget.
Status FinalTrip(ResourceGovernor* governor) {
  return governor != nullptr ? governor->TripStatus() : Status::OK();
}

}  // namespace

Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& q,
                                    const Structure& d,
                                    YannakakisStats* stats,
                                    ResourceGovernor* governor,
                                    unsigned num_threads) {
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/false));
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  return run.satisfiable();
}

Result<std::optional<std::vector<Element>>> AcyclicWitness(
    const ConjunctiveQuery& q, const Structure& d, YannakakisStats* stats,
    ResourceGovernor* governor, unsigned num_threads) {
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/true));
  if (!run.satisfiable()) {
    CQCS_RETURN_IF_ERROR(FinalTrip(governor));
    return std::optional<std::vector<Element>>();
  }
  std::vector<std::vector<Element>> first;
  CQCS_RETURN_IF_ERROR(run.Enumerate(1, &first));
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  if (first.empty()) return std::optional<std::vector<Element>>();
  return std::optional<std::vector<Element>>(std::move(first[0]));
}

Result<size_t> AcyclicCount(const ConjunctiveQuery& q, const Structure& d,
                            size_t limit, YannakakisStats* stats,
                            ResourceGovernor* governor,
                            unsigned num_threads) {
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/true));
  if (!run.satisfiable()) {
    CQCS_RETURN_IF_ERROR(FinalTrip(governor));
    return size_t{0};
  }
  Result<size_t> count = run.Count(limit);
  if (!count.ok()) return count;
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  return count;
}

Result<std::vector<std::vector<Element>>> AcyclicEnumerate(
    const ConjunctiveQuery& q, const Structure& d, size_t max_results,
    YannakakisStats* stats, ResourceGovernor* governor,
    unsigned num_threads) {
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/true));
  std::vector<std::vector<Element>> out;
  if (!run.satisfiable()) {
    CQCS_RETURN_IF_ERROR(FinalTrip(governor));
    return out;
  }
  CQCS_RETURN_IF_ERROR(run.Enumerate(max_results, &out));
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  return out;
}

Result<std::vector<std::vector<Element>>> AcyclicProject(
    const ConjunctiveQuery& q, const Structure& d,
    std::span<const VarId> projection, size_t max_results,
    YannakakisStats* stats, ResourceGovernor* governor,
    unsigned num_threads) {
  for (VarId v : projection) {
    if (v >= q.var_count()) {
      return Status::InvalidArgument("projection variable out of range");
    }
  }
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/true));
  if (!run.satisfiable()) {
    CQCS_RETURN_IF_ERROR(FinalTrip(governor));
    return std::vector<std::vector<Element>>();
  }
  Result<std::vector<std::vector<Element>>> rows =
      run.Project(projection, max_results);
  if (!rows.ok()) return rows;
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  return rows;
}

Result<size_t> AcyclicProjectCount(const ConjunctiveQuery& q,
                                   const Structure& d,
                                   std::span<const VarId> projection,
                                   size_t limit, YannakakisStats* stats,
                                   ResourceGovernor* governor,
                                   unsigned num_threads) {
  for (VarId v : projection) {
    if (v >= q.var_count()) {
      return Status::InvalidArgument("projection variable out of range");
    }
  }
  Yannakakis run(q, d, stats, governor, num_threads);
  CQCS_RETURN_IF_ERROR(run.Prepare(/*full_reduce=*/true));
  if (!run.satisfiable()) {
    CQCS_RETURN_IF_ERROR(FinalTrip(governor));
    return size_t{0};
  }
  Result<size_t> count = run.ProjectCount(projection, limit);
  if (!count.ok()) return count;
  CQCS_RETURN_IF_ERROR(FinalTrip(governor));
  return count;
}

Result<bool> AcyclicContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(q1.Validate());
  CQCS_RETURN_IF_ERROR(q2.Validate());
  if (!q1.vocabulary()->Equals(*q2.vocabulary())) {
    return Status::InvalidArgument("queries have different vocabularies");
  }
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument("queries have different head arities");
  }
  // Attach head markers to Q2's body (unary atoms are ears, so acyclicity
  // is preserved iff Q2 was acyclic), then evaluate over D_{Q1}.
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  ConjunctiveQuery q2_marked(d1.vocabulary, q2.head_name());
  for (VarId v = 0; v < q2.var_count(); ++v) {
    q2_marked.GetOrCreateVar(q2.var_name(v));
  }
  for (const Atom& atom : q2.atoms()) {
    q2_marked.AddAtom(atom.rel, atom.args);
  }
  for (size_t i = 0; i < q2.head().size(); ++i) {
    auto marker = d1.vocabulary->FindRelation("__head_" + std::to_string(i));
    CQCS_CHECK(marker.has_value());
    q2_marked.AddAtom(*marker, {q2.head()[i]});
  }
  q2_marked.SetHead({});
  if (!IsAcyclicQuery(q2_marked)) {
    return Status::InvalidArgument("Q2 is not acyclic");
  }
  return EvaluateBooleanAcyclic(q2_marked, d1.structure);
}

}  // namespace cqcs
