// Rule-syntax parser for conjunctive queries.
//
// Grammar:
//   query  := head ":-" body "."?
//   head   := name "(" varlist? ")"
//   body   := atom ("," atom)*
//   atom   := name "(" varlist ")"
//   varlist:= var ("," var)*
//
// Example:  Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).
//
// All arguments are variables (the paper's queries are constant-free).
// A Boolean query has an empty head: "Q() :- E(X, Y)."

#ifndef CQCS_CQ_PARSER_H_
#define CQCS_CQ_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "cq/query.h"

namespace cqcs {

/// Parses against a fixed vocabulary (body relations must exist in it).
Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    VocabularyPtr vocabulary);

/// Parses and infers the vocabulary from the body atoms.
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

}  // namespace cqcs

#endif  // CQCS_CQ_PARSER_H_
