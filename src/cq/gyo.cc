#include "cq/gyo.h"

#include <algorithm>

#include "common/check.h"
#include "cq/acyclic.h"

namespace cqcs {

namespace {

class GyoReducer {
 public:
  GyoReducer(size_t var_count, std::span<const std::vector<VarId>> edges)
      : m_(edges.size()), vars_(m_), alive_(m_, 1), in_queue_(m_, 0) {
    // Dedup each edge's vertex set and count live occurrences per vertex.
    cnt_.assign(var_count, 0);
    for (size_t i = 0; i < m_; ++i) {
      vars_[i].assign(edges[i].begin(), edges[i].end());
      std::sort(vars_[i].begin(), vars_[i].end());
      vars_[i].erase(std::unique(vars_[i].begin(), vars_[i].end()),
                     vars_[i].end());
      for (VarId v : vars_[i]) ++cnt_[v];
    }
    // Static vertex -> edges CSR incidence (scanned with alive_ filtering;
    // each vertex's list is walked at most once by the cnt==1 trigger).
    offsets_.assign(var_count + 1, 0);
    for (const auto& e : vars_) {
      for (VarId v : e) ++offsets_[v + 1];
    }
    for (size_t v = 0; v < var_count; ++v) offsets_[v + 1] += offsets_[v];
    incidence_.resize(offsets_.back());
    std::vector<uint32_t> fill(offsets_.begin(), offsets_.end() - 1);
    for (uint32_t i = 0; i < m_; ++i) {
      for (VarId v : vars_[i]) incidence_[fill[v]++] = i;
    }
    stamp_.assign(var_count, UINT32_MAX);
  }

  std::optional<JoinTree> Run() {
    JoinTree tree;
    tree.parent.assign(m_, JoinTree::kNoParent);
    parent_ = &tree;
    alive_count_ = m_;
    for (uint32_t i = 0; i < m_; ++i) Enqueue(i);
    while (!queue_.empty()) {
      uint32_t e = queue_.back();
      queue_.pop_back();
      in_queue_[e] = 0;
      TryRemoveEar(e);
    }
    if (alive_count_ > 0) return std::nullopt;  // cyclic
    return tree;
  }

 private:
  void Enqueue(uint32_t e) {
    if (!alive_[e] || in_queue_[e]) return;
    in_queue_[e] = 1;
    queue_.push_back(e);
  }

  void Remove(uint32_t e, uint32_t parent) {
    alive_[e] = 0;
    --alive_count_;
    parent_->parent[e] = parent;
    for (VarId v : vars_[e]) {
      if (--cnt_[v] == 1) {
        // v's sole remaining live edge may have just become an ear.
        for (uint32_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
          if (alive_[incidence_[i]]) {
            Enqueue(incidence_[i]);
            break;
          }
        }
      }
    }
  }

  void TryRemoveEar(uint32_t e) {
    if (!alive_[e]) return;
    // S_e: vertices of e still shared with another live edge.
    shared_.clear();
    VarId pivot = 0;
    uint32_t pivot_cnt = UINT32_MAX;
    for (VarId v : vars_[e]) {
      if (cnt_[v] > 1) {
        shared_.push_back(v);
        if (cnt_[v] < pivot_cnt) {
          pivot_cnt = cnt_[v];
          pivot = v;
        }
      }
    }
    if (shared_.empty()) {
      // Isolated ear: nothing left to join it to — a forest root.
      Remove(e, JoinTree::kNoParent);
      return;
    }
    // A witness must contain every vertex of S_e, in particular the pivot:
    // scanning the pivot's live edges sees every candidate.
    for (uint32_t i = offsets_[pivot]; i < offsets_[pivot + 1]; ++i) {
      uint32_t w = incidence_[i];
      if (w == e || !alive_[w]) continue;
      if (stamped_edge_ != w) {
        // Mark w's vertex set for O(1) membership tests. Edge vertex sets
        // never change, so a mark is valid until overwritten.
        for (VarId u : vars_[w]) stamp_[u] = w;
        stamped_edge_ = w;
      }
      bool covers = true;
      for (VarId u : shared_) {
        if (stamp_[u] != w) {
          covers = false;
          break;
        }
      }
      if (covers) {
        Remove(e, w);
        Enqueue(w);  // w's shared set may have shrunk to coverable
        return;
      }
    }
    // No witness now; the cnt==1 trigger re-enqueues e if that changes.
  }

  const uint32_t m_;
  std::vector<std::vector<VarId>> vars_;
  std::vector<uint32_t> cnt_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> incidence_;
  std::vector<uint8_t> alive_, in_queue_;
  std::vector<uint32_t> queue_;
  std::vector<VarId> shared_;
  // stamp_[u] == w marks u as a vertex of edge w (cleared lazily by
  // overwrite; edge ids are unique so no generation counter is needed).
  std::vector<uint32_t> stamp_;
  uint32_t stamped_edge_ = UINT32_MAX;
  uint32_t alive_count_ = 0;
  JoinTree* parent_ = nullptr;
};

}  // namespace

std::optional<JoinTree> GyoJoinForest(
    size_t var_count, std::span<const std::vector<VarId>> edges) {
  return GyoReducer(var_count, edges).Run();
}

std::vector<std::vector<VarId>> QueryHyperedges(const ConjunctiveQuery& q) {
  std::vector<std::vector<VarId>> edges;
  edges.reserve(q.atoms().size());
  for (const Atom& atom : q.atoms()) edges.push_back(atom.args);
  return edges;
}

bool IsAcyclicStructure(const Structure& a) {
  std::vector<std::vector<VarId>> edges;
  edges.reserve(a.TotalTuples());
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::span<const Element> tup = r.tuple(t);
      edges.emplace_back(tup.begin(), tup.end());
    }
  }
  return GyoJoinForest(a.universe_size(), edges).has_value();
}

}  // namespace cqcs
