// The canonical database D_Q of a conjunctive query (Chandra–Merlin).
//
// Every variable of Q becomes an element; every subgoal becomes a tuple.
// When head markers are requested, a fresh unary predicate __head_i is added
// for each head position i, holding the i-th distinguished variable — this
// is exactly the construction in Section 2 of the paper, which makes
// containment a pure homomorphism question:
//
//     Q1 ⊆ Q2  iff  there is a homomorphism D_{Q2} -> D_{Q1}.

#ifndef CQCS_CQ_CANONICAL_H_
#define CQCS_CQ_CANONICAL_H_

#include <string>
#include <vector>

#include "core/structure.h"
#include "cq/query.h"

namespace cqcs {

/// A canonical database together with the bookkeeping needed to interpret
/// its elements.
struct CanonicalDb {
  /// Body vocabulary, or body vocabulary + __head_i markers.
  VocabularyPtr vocabulary;
  /// The database: one element per query variable (element id == VarId).
  Structure structure;
  /// Elements of the distinguished variables, in head order.
  std::vector<Element> head;
};

/// Builds D_Q over the body vocabulary only (no head markers). Elements are
/// the query's variables (element id == VarId).
CanonicalDb MakeCanonicalDb(const ConjunctiveQuery& q);

/// Builds D_Q with head markers __head_0..__head_{n-1}. Queries with equal
/// body vocabularies and equal head arity get Equals() vocabularies, so the
/// two canonical databases can be fed to the homomorphism machinery.
CanonicalDb MakeCanonicalDbWithHeadMarkers(const ConjunctiveQuery& q);

/// Inverse of MakeCanonicalDb: the Boolean query Q_D whose body conjoins all
/// facts of D (every element becomes an existentially quantified variable).
/// Section 2: hom(A -> B) iff Q_B ⊆ Q_A.
ConjunctiveQuery CanonicalQuery(const Structure& d,
                                const std::string& head_name = "Q");

}  // namespace cqcs

#endif  // CQCS_CQ_CANONICAL_H_
