// Conjunctive-query containment, evaluation, and equivalence — the
// Chandra–Merlin machinery (Theorem 2.1 of the paper).

#ifndef CQCS_CQ_CONTAINMENT_H_
#define CQCS_CQ_CONTAINMENT_H_

#include <optional>

#include "cq/canonical.h"
#include "cq/query.h"
#include "solver/backtracking.h"

namespace cqcs {

/// Outcome of a containment test, optionally with the witnessing containment
/// mapping (a homomorphism D_{Q2} -> D_{Q1}, indexed by Q2's variables).
struct ContainmentResult {
  bool contained = false;
  std::optional<Homomorphism> witness;
};

/// Validates that Q1 ⊆ Q2 is well-defined: both queries pass Validate(),
/// share an EDB vocabulary, and have equal head arities. The single source
/// of the containment error contract — used by every containment entry
/// point here and by the engine's HomProblem::FromContainment.
Status CheckComparableQueries(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2);

/// Decides Q1 ⊆ Q2. Errors: InvalidArgument when the queries have different
/// body vocabularies or head arities (containment is then undefined);
/// Unsupported when `options.node_limit` was hit before a decision.
Result<ContainmentResult> Contains(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   SolveOptions options = {});

/// Convenience wrapper around Contains.
Result<bool> IsContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         SolveOptions options = {});

/// Q1 ≡ Q2 (containment both ways).
Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           SolveOptions options = {});

/// The second characterization of Theorem 2.1: Q1 ⊆ Q2 iff the tuple of
/// Q1's distinguished variables is in Q2(D_{Q1}). Exists for
/// cross-validation of the homomorphism route; asymptotically equivalent.
Result<bool> IsContainedViaEvaluation(const ConjunctiveQuery& q1,
                                      const ConjunctiveQuery& q2,
                                      SolveOptions options = {});

/// Evaluates Q over database D (same vocabulary): the set of answer tuples,
/// each of length arity(Q). Errors as in Contains.
Result<std::vector<std::vector<Element>>> Evaluate(const ConjunctiveQuery& q,
                                                   const Structure& d,
                                                   SolveOptions options = {});

/// Evaluates a Boolean (nullary) query: is there any satisfying assignment?
Result<bool> EvaluateBoolean(const ConjunctiveQuery& q, const Structure& d,
                             SolveOptions options = {});

/// Minimizes Q by the classical Chandra–Merlin procedure: greedily drop
/// atoms whose removal keeps the query equivalent. The result is a core:
/// no further atom can be removed. Exponential in the worst case (each step
/// is a containment test).
Result<ConjunctiveQuery> Minimize(const ConjunctiveQuery& q,
                                  SolveOptions options = {});

}  // namespace cqcs

#endif  // CQCS_CQ_CONTAINMENT_H_
