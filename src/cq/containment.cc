#include "cq/containment.h"

#include "api/engine.h"

namespace cqcs {

namespace {

// The historical message (shared verbatim by every search-backed wrapper,
// evaluation included) — kept identical so error contracts don't shift.
Status NodeLimitError() {
  return Status::Unsupported(
      "node limit reached before the containment test was decided");
}

/// Engine with the caller's uniform-search options and kAuto routing — the
/// one battle-tested path every public convenience goes through.
HomEngine MakeEngine(const SolveOptions& options) {
  EngineOptions engine_options;
  engine_options.solve = options;
  return HomEngine(engine_options);
}

}  // namespace

Status CheckComparableQueries(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(q1.Validate());
  CQCS_RETURN_IF_ERROR(q2.Validate());
  if (!q1.vocabulary()->Equals(*q2.vocabulary())) {
    return Status::InvalidArgument(
        "containment requires a common EDB vocabulary");
  }
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument(
        "containment requires equal head arities (got " +
        std::to_string(q1.arity()) + " and " + std::to_string(q2.arity()) +
        ")");
  }
  return Status::OK();
}

Result<ContainmentResult> Contains(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   SolveOptions options) {
  // Theorem 2.1: Q1 ⊆ Q2 iff hom(D_{Q2} -> D_{Q1}); FromContainment builds
  // the marked canonical databases (and validates comparability).
  CQCS_ASSIGN_OR_RETURN(HomProblem problem,
                        HomProblem::FromContainment(q1, q2));
  CQCS_ASSIGN_OR_RETURN(EngineResult r,
                        MakeEngine(options).Run(problem, HomTask::kWitness));
  if (!r.decided && r.stats.search.limit_hit) return NodeLimitError();
  ContainmentResult result;
  result.contained = r.decided;
  result.witness = std::move(r.witness);
  return result;
}

Result<bool> IsContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2, SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(HomProblem problem,
                        HomProblem::FromContainment(q1, q2));
  CQCS_ASSIGN_OR_RETURN(EngineResult r,
                        MakeEngine(options).Run(problem, HomTask::kDecide));
  if (!r.decided && r.stats.search.limit_hit) return NodeLimitError();
  return r.decided;
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(bool forward, IsContained(q1, q2, options));
  if (!forward) return false;
  return IsContained(q2, q1, options);
}

Result<bool> IsContainedViaEvaluation(const ConjunctiveQuery& q1,
                                      const ConjunctiveQuery& q2,
                                      SolveOptions options) {
  // The second characterization of Theorem 2.1, kept on the raw solver
  // deliberately: it exists to cross-validate the engine-routed hom test.
  CQCS_RETURN_IF_ERROR(CheckComparableQueries(q1, q2));
  // (X1,...,Xn) ∈ Q2(D_{Q1}): solve for homomorphisms from Q2's body into
  // D_{Q1} whose head projection equals Q1's distinguished tuple.
  CanonicalDb d1 = MakeCanonicalDb(q1);
  CanonicalDb body2 = MakeCanonicalDb(q2);
  BacktrackingSolver solver(body2.structure, d1.structure, options);
  SolveStats stats;
  bool found = false;
  solver.ForEachSolution(
      [&](const Homomorphism& h) {
        for (size_t i = 0; i < body2.head.size(); ++i) {
          if (h[body2.head[i]] != d1.head[i]) return true;  // keep looking
        }
        found = true;
        return false;
      },
      &stats);
  if (!found && stats.limit_hit) return NodeLimitError();
  return found;
}

Result<std::vector<std::vector<Element>>> Evaluate(const ConjunctiveQuery& q,
                                                   const Structure& d,
                                                   SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(HomProblem problem, HomProblem::FromQuery(q, d));
  CQCS_ASSIGN_OR_RETURN(EngineResult r,
                        MakeEngine(options).Run(problem, HomTask::kProject));
  if (r.stats.search.limit_hit) return NodeLimitError();
  return std::move(r.rows);
}

Result<bool> EvaluateBoolean(const ConjunctiveQuery& q, const Structure& d,
                             SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(HomProblem problem, HomProblem::FromQuery(q, d));
  CQCS_ASSIGN_OR_RETURN(EngineResult r,
                        MakeEngine(options).Run(problem, HomTask::kDecide));
  if (!r.decided && r.stats.search.limit_hit) return NodeLimitError();
  return r.decided;
}

Result<ConjunctiveQuery> Minimize(const ConjunctiveQuery& q,
                                  SolveOptions options) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  HomEngine engine = MakeEngine(options);
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    // Dropping an atom only weakens the query, so current ⊆ candidate
    // always; they are equivalent iff candidate ⊆ current, i.e. iff
    // hom(D_{current} -> D_{candidate}). The source D_{current} is shared
    // by every candidate test of this pass, so compile it once and rebind
    // the target — the engine reuses the profile's source half, the GYO
    // verdict, and the decomposition across the whole pass.
    CanonicalDb d_current = MakeCanonicalDbWithHeadMarkers(current);
    CQCS_ASSIGN_OR_RETURN(
        HomProblem base, HomProblem::FromStructures(d_current.structure,
                                                    d_current.structure));
    for (size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate = current.WithoutAtom(i);
      if (!candidate.Validate().ok()) continue;  // dropping broke safety
      CanonicalDb d_candidate = MakeCanonicalDbWithHeadMarkers(candidate);
      CQCS_ASSIGN_OR_RETURN(HomProblem problem,
                            base.WithTarget(std::move(d_candidate.structure)));
      CQCS_ASSIGN_OR_RETURN(EngineResult r,
                            engine.Run(problem, HomTask::kDecide));
      if (!r.decided && r.stats.search.limit_hit) return NodeLimitError();
      if (r.decided) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace cqcs
