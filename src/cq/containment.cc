#include "cq/containment.h"

namespace cqcs {

namespace {

Status CheckComparable(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(q1.Validate());
  CQCS_RETURN_IF_ERROR(q2.Validate());
  if (!q1.vocabulary()->Equals(*q2.vocabulary())) {
    return Status::InvalidArgument(
        "containment requires a common EDB vocabulary");
  }
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument(
        "containment requires equal head arities (got " +
        std::to_string(q1.arity()) + " and " + std::to_string(q2.arity()) +
        ")");
  }
  return Status::OK();
}

Status NodeLimitError() {
  return Status::Unsupported(
      "node limit reached before the containment test was decided");
}

}  // namespace

Result<ContainmentResult> Contains(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   SolveOptions options) {
  CQCS_RETURN_IF_ERROR(CheckComparable(q1, q2));
  // Theorem 2.1: Q1 ⊆ Q2 iff hom(D_{Q2} -> D_{Q1}), with head markers
  // pinning distinguished variables positionally.
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  CanonicalDb d2 = MakeCanonicalDbWithHeadMarkers(q2);
  BacktrackingSolver solver(d2.structure, d1.structure, options);
  SolveStats stats;
  auto h = solver.Solve(&stats);
  if (!h.has_value() && stats.limit_hit) return NodeLimitError();
  ContainmentResult result;
  result.contained = h.has_value();
  result.witness = std::move(h);
  return result;
}

Result<bool> IsContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2, SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(ContainmentResult r, Contains(q1, q2, options));
  return r.contained;
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, SolveOptions options) {
  CQCS_ASSIGN_OR_RETURN(bool forward, IsContained(q1, q2, options));
  if (!forward) return false;
  return IsContained(q2, q1, options);
}

Result<bool> IsContainedViaEvaluation(const ConjunctiveQuery& q1,
                                      const ConjunctiveQuery& q2,
                                      SolveOptions options) {
  CQCS_RETURN_IF_ERROR(CheckComparable(q1, q2));
  // (X1,...,Xn) ∈ Q2(D_{Q1}): solve for homomorphisms from Q2's body into
  // D_{Q1} whose head projection equals Q1's distinguished tuple.
  CanonicalDb d1 = MakeCanonicalDb(q1);
  CanonicalDb body2 = MakeCanonicalDb(q2);
  BacktrackingSolver solver(body2.structure, d1.structure, options);
  SolveStats stats;
  bool found = false;
  solver.ForEachSolution(
      [&](const Homomorphism& h) {
        for (size_t i = 0; i < body2.head.size(); ++i) {
          if (h[body2.head[i]] != d1.head[i]) return true;  // keep looking
        }
        found = true;
        return false;
      },
      &stats);
  if (!found && stats.limit_hit) return NodeLimitError();
  return found;
}

Result<std::vector<std::vector<Element>>> Evaluate(const ConjunctiveQuery& q,
                                                   const Structure& d,
                                                   SolveOptions options) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  if (!q.vocabulary()->Equals(*d.vocabulary())) {
    return Status::InvalidArgument(
        "query and database have different vocabularies");
  }
  CanonicalDb body = MakeCanonicalDb(q);
  BacktrackingSolver solver(body.structure, d, options);
  SolveStats stats;
  auto rows = solver.EnumerateProjections(body.head, SIZE_MAX, &stats);
  if (stats.limit_hit) return NodeLimitError();
  return rows;
}

Result<bool> EvaluateBoolean(const ConjunctiveQuery& q, const Structure& d,
                             SolveOptions options) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  if (!q.vocabulary()->Equals(*d.vocabulary())) {
    return Status::InvalidArgument(
        "query and database have different vocabularies");
  }
  CanonicalDb body = MakeCanonicalDb(q);
  BacktrackingSolver solver(body.structure, d, options);
  SolveStats stats;
  auto h = solver.Solve(&stats);
  if (!h.has_value() && stats.limit_hit) return NodeLimitError();
  return h.has_value();
}

Result<ConjunctiveQuery> Minimize(const ConjunctiveQuery& q,
                                  SolveOptions options) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate = current.WithoutAtom(i);
      if (!candidate.Validate().ok()) continue;  // dropping broke safety
      // Dropping an atom only weakens the query, so current ⊆ candidate
      // always; they are equivalent iff candidate ⊆ current.
      CQCS_ASSIGN_OR_RETURN(bool equivalent,
                            IsContained(candidate, current, options));
      if (equivalent) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace cqcs
