#include "cq/query.h"

#include <sstream>

#include "common/check.h"

namespace cqcs {

ConjunctiveQuery::ConjunctiveQuery(VocabularyPtr vocabulary,
                                   std::string head_name)
    : vocabulary_(std::move(vocabulary)), head_name_(std::move(head_name)) {
  CQCS_CHECK(vocabulary_ != nullptr);
}

VarId ConjunctiveQuery::GetOrCreateVar(std::string_view name) {
  auto it = var_ids_.find(std::string(name));
  if (it != var_ids_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.emplace_back(name);
  var_ids_.emplace(std::string(name), id);
  return id;
}

std::optional<VarId> ConjunctiveQuery::FindVar(std::string_view name) const {
  auto it = var_ids_.find(std::string(name));
  if (it == var_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& ConjunctiveQuery::var_name(VarId v) const {
  CQCS_CHECK(v < var_names_.size());
  return var_names_[v];
}

void ConjunctiveQuery::AddAtom(RelId rel, std::vector<VarId> args) {
  CQCS_CHECK(rel < vocabulary_->size());
  CQCS_CHECK_MSG(args.size() == vocabulary_->arity(rel),
                 "atom for " << vocabulary_->name(rel) << " has "
                             << args.size() << " arguments");
  for (VarId v : args) CQCS_CHECK(v < var_names_.size());
  atoms_.push_back(Atom{rel, std::move(args)});
}

Status ConjunctiveQuery::AddAtomByName(
    std::string_view rel_name, const std::vector<std::string>& var_names) {
  auto rel = vocabulary_->FindRelation(rel_name);
  if (!rel.has_value()) {
    return Status::NotFound("unknown relation '" + std::string(rel_name) +
                            "'");
  }
  if (var_names.size() != vocabulary_->arity(*rel)) {
    return Status::InvalidArgument(
        "relation " + std::string(rel_name) + " expects " +
        std::to_string(vocabulary_->arity(*rel)) + " arguments");
  }
  std::vector<VarId> args;
  args.reserve(var_names.size());
  for (const std::string& name : var_names) {
    args.push_back(GetOrCreateVar(name));
  }
  atoms_.push_back(Atom{*rel, std::move(args)});
  return Status::OK();
}

void ConjunctiveQuery::SetHead(std::vector<VarId> head) {
  for (VarId v : head) CQCS_CHECK(v < var_names_.size());
  head_ = std::move(head);
}

Status ConjunctiveQuery::Validate() const {
  std::vector<uint8_t> in_body(var_names_.size(), 0);
  for (const Atom& atom : atoms_) {
    if (atom.rel >= vocabulary_->size()) {
      return Status::Internal("atom references unknown relation");
    }
    if (atom.args.size() != vocabulary_->arity(atom.rel)) {
      return Status::InvalidArgument("atom arity mismatch for relation " +
                                     vocabulary_->name(atom.rel));
    }
    for (VarId v : atom.args) {
      if (v >= var_names_.size()) {
        return Status::Internal("atom references unknown variable");
      }
      in_body[v] = 1;
    }
  }
  for (VarId v : head_) {
    if (v >= var_names_.size() || !in_body[v]) {
      return Status::InvalidArgument(
          "unsafe query: head variable " +
          (v < var_names_.size() ? var_names_[v] : "?") +
          " does not occur in the body");
    }
  }
  return Status::OK();
}

size_t ConjunctiveQuery::Size() const {
  size_t n = var_names_.size();
  for (const Atom& atom : atoms_) n += atom.args.size();
  return n;
}

bool ConjunctiveQuery::IsTwoAtomQuery() const {
  std::vector<uint32_t> uses(vocabulary_->size(), 0);
  for (const Atom& atom : atoms_) {
    if (++uses[atom.rel] > 2) return false;
  }
  return true;
}

ConjunctiveQuery ConjunctiveQuery::WithoutAtom(size_t index) const {
  CQCS_CHECK(index < atoms_.size());
  ConjunctiveQuery out(vocabulary_, head_name_);
  out.var_names_ = var_names_;
  out.var_ids_ = var_ids_;
  out.head_ = head_;
  out.atoms_.reserve(atoms_.size() - 1);
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i != index) out.atoms_.push_back(atoms_[i]);
  }
  return out;
}

bool ConjunctiveQuery::operator==(const ConjunctiveQuery& other) const {
  return vocabulary_->Equals(*other.vocabulary_) &&
         head_name_ == other.head_name_ && var_names_ == other.var_names_ &&
         atoms_ == other.atoms_ && head_ == other.head_;
}

std::string ToString(const ConjunctiveQuery& q) {
  std::ostringstream out;
  out << q.head_name() << "(";
  for (size_t i = 0; i < q.head().size(); ++i) {
    if (i > 0) out << ", ";
    out << q.var_name(q.head()[i]);
  }
  out << ") :- ";
  const auto& atoms = q.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out << ", ";
    out << q.vocabulary()->name(atoms[i].rel) << "(";
    for (size_t j = 0; j < atoms[i].args.size(); ++j) {
      if (j > 0) out << ", ";
      out << q.var_name(atoms[i].args[j]);
    }
    out << ")";
  }
  out << ".";
  return out.str();
}

}  // namespace cqcs
