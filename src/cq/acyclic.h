// Acyclic conjunctive queries — querywidth 1 in the Chekuri–Rajaraman
// terminology the paper discusses ([Yan81], [CR97]). Acyclicity is decided
// by GYO ear removal on the query's hypergraph (cq/gyo.h); a join tree
// witnesses it, and Yannakakis's semijoin program evaluates acyclic
// queries in polynomial time — not just Boolean decide: after the
// bottom-up + top-down semijoin reduction every surviving table row
// participates in at least one solution, which makes witness extraction a
// single top-down walk, enumeration output-bounded (poly delay per
// solution), counting a bottom-up product/sum DP, and projection a
// bottom-up join-project pass whose intermediates stay bounded by
// input x output (the size-bound frame of Valiant & Valiant,
// arXiv:0909.2030). Tables live in the columnar rel/ kernel: flat
// rel::Table rows, open-addressing rel::HashIndex probes, no per-row
// allocation.
//
// Containment Q1 ⊆ Q2 with acyclic Q2 is then polynomial: attach the head
// markers to Q2 (unary atoms keep it acyclic) and evaluate over D_{Q1}.

#ifndef CQCS_CQ_ACYCLIC_H_
#define CQCS_CQ_ACYCLIC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/structure.h"
#include "cq/query.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// A join tree over the atoms of a query: node i corresponds to atom i;
/// parents are always removed after their children in GYO elimination.
/// Queries whose hypergraph is disconnected produce a forest (several
/// roots).
struct JoinTree {
  static constexpr uint32_t kNoParent = UINT32_MAX;
  /// parent[i] = atom index of i's parent, or kNoParent for roots.
  std::vector<uint32_t> parent;
};

/// Counters from one Yannakakis run, surfaced through EngineStats and
/// `hom_tool --explain`. `max_table_rows` is the output-boundedness
/// witness: the largest table the run ever held. The worker/morsel/steal
/// trio describes the morsel-parallel dispatches (common/work_pool.h):
/// `workers` and `morsels` are deterministic for a given input and thread
/// count (morsel decomposition depends only on table sizes); `steals` is
/// scheduling-dependent and excluded from thread-invariance oracles.
struct YannakakisStats {
  uint64_t atom_tables = 0;       ///< tables materialized (one per atom)
  uint64_t rows_materialized = 0; ///< distinct rows loaded into atom tables
  uint64_t max_table_rows = 0;    ///< peak rows in any one table
  uint64_t semijoins = 0;         ///< semijoin operator applications
  uint64_t rows_pruned = 0;       ///< rows removed by the semijoin passes
  uint64_t join_rows = 0;         ///< rows produced by the projection phase
  unsigned workers = 0;           ///< resolved worker count of the run
  uint64_t morsels = 0;           ///< morsel dispatches across all passes
  uint64_t steals = 0;            ///< morsels run by pool (non-calling) threads
};

/// True iff the query's hypergraph is α-acyclic (GYO reduces it away).
bool IsAcyclicQuery(const ConjunctiveQuery& q);

/// Builds a join tree; InvalidArgument when the query is cyclic.
Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& q);

/// Yannakakis evaluation of a Boolean acyclic query: one bottom-up
/// semijoin sweep over the join tree. Works for any query head (the head
/// is ignored; this answers "is the body satisfiable in d" — variables
/// outside every atom do not constrain the answer). Errors:
/// InvalidArgument for cyclic queries or vocabulary mismatch.
///
/// All evaluation entry points accept an optional per-request
/// ResourceGovernor (common/governor.h): the materialization, semijoin,
/// and task phases poll it on a row/node stride and charge table growth
/// against its memory budget; a trip unwinds with kResourceExhausted and
/// no partial output.
///
/// They also take `num_threads` (same convention as
/// SolveOptions::num_threads: 1 = sequential, 0 = one per hardware
/// thread, N = N workers): the materialization, semijoin, count-DP, and
/// join phases then run as morsels on the shared MorselPool. Results and
/// all stats except workers/steals are byte-identical at every thread
/// count — parallelism changes wall-clock, never the answer.
Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& q,
                                    const Structure& d,
                                    YannakakisStats* stats = nullptr,
                                    ResourceGovernor* governor = nullptr,
                                    unsigned num_threads = 1);

// -- Assignment-level tasks. -----------------------------------------------
//
// The following run the full reduction (bottom-up + top-down) and answer
// about total assignments of ALL q.var_count() variables into d's
// universe: a variable in no atom ranges freely over the universe (for
// the canonical query of a structure, those are the isolated source
// elements). Errors mirror EvaluateBooleanAcyclic.

/// One satisfying assignment (indexed by VarId), or nullopt.
Result<std::optional<std::vector<Element>>> AcyclicWitness(
    const ConjunctiveQuery& q, const Structure& d,
    YannakakisStats* stats = nullptr, ResourceGovernor* governor = nullptr,
    unsigned num_threads = 1);

/// Number of satisfying assignments, saturated at `limit` (the result is
/// min(true count, limit), so callers can cap astronomically large
/// counts without overflow).
Result<size_t> AcyclicCount(const ConjunctiveQuery& q, const Structure& d,
                            size_t limit = SIZE_MAX,
                            YannakakisStats* stats = nullptr,
                            ResourceGovernor* governor = nullptr,
                            unsigned num_threads = 1);

/// Up to max_results satisfying assignments, each indexed by VarId.
/// Output-bounded: the reduced tables contain no dead rows, so the walk
/// never backtracks past a row that fails to extend.
Result<std::vector<std::vector<Element>>> AcyclicEnumerate(
    const ConjunctiveQuery& q, const Structure& d,
    size_t max_results = SIZE_MAX, YannakakisStats* stats = nullptr,
    ResourceGovernor* governor = nullptr, unsigned num_threads = 1);

/// Distinct projections of the satisfying assignments onto `projection`
/// (a list of VarIds, repeats allowed), up to max_results rows. This is
/// CQ answer enumeration when q is a canonical query and `projection` its
/// head. Joins are projected down to (output ∪ connector) columns at
/// every node, keeping intermediates output-bounded. InvalidArgument for
/// out-of-range projection variables.
Result<std::vector<std::vector<Element>>> AcyclicProject(
    const ConjunctiveQuery& q, const Structure& d,
    std::span<const VarId> projection, size_t max_results = SIZE_MAX,
    YannakakisStats* stats = nullptr, ResourceGovernor* governor = nullptr,
    unsigned num_threads = 1);

/// min(#distinct projections onto `projection`, limit) — the count
/// AcyclicProject's rows would have, without materializing them. Runs the
/// same bottom-up join-project reduction (per-node hash-set dedup keeps
/// intermediates output-bounded) and then multiplies root-table row
/// counts instead of assembling the cross product: per join-forest tree
/// the reduced root rows are distinct projections of that tree's
/// variables, so the product — times universe^|isolated projection vars|
/// — is exactly the distinct-row count, saturated at `limit`. Errors
/// mirror AcyclicProject.
Result<size_t> AcyclicProjectCount(const ConjunctiveQuery& q,
                                   const Structure& d,
                                   std::span<const VarId> projection,
                                   size_t limit = SIZE_MAX,
                                   YannakakisStats* stats = nullptr,
                                   ResourceGovernor* governor = nullptr,
                                   unsigned num_threads = 1);

/// Containment Q1 ⊆ Q2 for acyclic Q2, in polynomial time. Q1 is
/// arbitrary. Errors mirror Contains(), plus InvalidArgument when Q2
/// (with head markers attached) is not acyclic.
Result<bool> AcyclicContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

}  // namespace cqcs

#endif  // CQCS_CQ_ACYCLIC_H_
