// Acyclic conjunctive queries — querywidth 1 in the Chekuri–Rajaraman
// terminology the paper discusses ([Yan81], [CR97]). Acyclicity is decided
// by GYO ear removal on the query's hypergraph; a join tree witnesses it,
// and Yannakakis's semijoin algorithm evaluates Boolean acyclic queries in
// polynomial time. Containment Q1 ⊆ Q2 with acyclic Q2 is then polynomial:
// attach the head markers to Q2 (unary atoms keep it acyclic) and evaluate
// over D_{Q1}.

#ifndef CQCS_CQ_ACYCLIC_H_
#define CQCS_CQ_ACYCLIC_H_

#include <vector>

#include "common/status.h"
#include "core/structure.h"
#include "cq/query.h"

namespace cqcs {

/// A join tree over the atoms of a query: node i corresponds to atom i;
/// parents precede children in GYO elimination. Queries whose hypergraph is
/// disconnected produce a forest (several roots).
struct JoinTree {
  static constexpr uint32_t kNoParent = UINT32_MAX;
  /// parent[i] = atom index of i's parent, or kNoParent for roots.
  std::vector<uint32_t> parent;
};

/// True iff the query's hypergraph is α-acyclic (GYO reduces it away).
bool IsAcyclicQuery(const ConjunctiveQuery& q);

/// Builds a join tree; InvalidArgument when the query is cyclic.
Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& q);

/// Yannakakis evaluation of a Boolean acyclic query: one bottom-up semijoin
/// sweep over the join tree. Polynomial: O(Σ per-atom table sizes · log).
/// Works for any query head (the head is ignored; this answers "is the body
/// satisfiable in d"). Errors: InvalidArgument for cyclic queries or
/// vocabulary mismatch.
Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& q,
                                    const Structure& d);

/// Containment Q1 ⊆ Q2 for acyclic Q2, in polynomial time. Q1 is arbitrary.
/// Errors mirror Contains(), plus InvalidArgument when Q2 (with head
/// markers attached) is not acyclic.
Result<bool> AcyclicContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

}  // namespace cqcs

#endif  // CQCS_CQ_ACYCLIC_H_
