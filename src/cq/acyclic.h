// Acyclic conjunctive queries — querywidth 1 in the Chekuri–Rajaraman
// terminology the paper discusses ([Yan81], [CR97]). Acyclicity is decided
// by GYO ear removal on the query's hypergraph (cq/gyo.h); a join tree
// witnesses it, and Yannakakis's semijoin program evaluates acyclic
// queries in polynomial time — not just Boolean decide: after the
// bottom-up + top-down semijoin reduction every surviving table row
// participates in at least one solution, which makes witness extraction a
// single top-down walk, enumeration output-bounded (poly delay per
// solution), counting a bottom-up product/sum DP, and projection a
// bottom-up join-project pass whose intermediates stay bounded by
// input x output (the size-bound frame of Valiant & Valiant,
// arXiv:0909.2030). Tables live in the columnar rel/ kernel: flat
// rel::Table rows, open-addressing rel::HashIndex probes, no per-row
// allocation.
//
// Containment Q1 ⊆ Q2 with acyclic Q2 is then polynomial: attach the head
// markers to Q2 (unary atoms keep it acyclic) and evaluate over D_{Q1}.

#ifndef CQCS_CQ_ACYCLIC_H_
#define CQCS_CQ_ACYCLIC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/structure.h"
#include "cq/query.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// A join tree over the atoms of a query: node i corresponds to atom i;
/// parents are always removed after their children in GYO elimination.
/// Queries whose hypergraph is disconnected produce a forest (several
/// roots).
struct JoinTree {
  static constexpr uint32_t kNoParent = UINT32_MAX;
  /// parent[i] = atom index of i's parent, or kNoParent for roots.
  std::vector<uint32_t> parent;
};

/// Counters from one Yannakakis run, surfaced through EngineStats and
/// `hom_tool --explain`. `max_table_rows` is the output-boundedness
/// witness: the largest table the run ever held.
struct YannakakisStats {
  uint64_t atom_tables = 0;       ///< tables materialized (one per atom)
  uint64_t rows_materialized = 0; ///< distinct rows loaded into atom tables
  uint64_t max_table_rows = 0;    ///< peak rows in any one table
  uint64_t semijoins = 0;         ///< semijoin operator applications
  uint64_t rows_pruned = 0;       ///< rows removed by the semijoin passes
  uint64_t join_rows = 0;         ///< rows produced by the projection phase
};

/// True iff the query's hypergraph is α-acyclic (GYO reduces it away).
bool IsAcyclicQuery(const ConjunctiveQuery& q);

/// Builds a join tree; InvalidArgument when the query is cyclic.
Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& q);

/// Yannakakis evaluation of a Boolean acyclic query: one bottom-up
/// semijoin sweep over the join tree. Works for any query head (the head
/// is ignored; this answers "is the body satisfiable in d" — variables
/// outside every atom do not constrain the answer). Errors:
/// InvalidArgument for cyclic queries or vocabulary mismatch.
///
/// All five evaluation entry points accept an optional per-request
/// ResourceGovernor (common/governor.h): the materialization, semijoin,
/// and task phases poll it on a row/node stride and charge table growth
/// against its memory budget; a trip unwinds with kResourceExhausted and
/// no partial output.
Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& q,
                                    const Structure& d,
                                    YannakakisStats* stats = nullptr,
                                    ResourceGovernor* governor = nullptr);

// -- Assignment-level tasks. -----------------------------------------------
//
// The following run the full reduction (bottom-up + top-down) and answer
// about total assignments of ALL q.var_count() variables into d's
// universe: a variable in no atom ranges freely over the universe (for
// the canonical query of a structure, those are the isolated source
// elements). Errors mirror EvaluateBooleanAcyclic.

/// One satisfying assignment (indexed by VarId), or nullopt.
Result<std::optional<std::vector<Element>>> AcyclicWitness(
    const ConjunctiveQuery& q, const Structure& d,
    YannakakisStats* stats = nullptr, ResourceGovernor* governor = nullptr);

/// Number of satisfying assignments, saturated at `limit` (the result is
/// min(true count, limit), so callers can cap astronomically large
/// counts without overflow).
Result<size_t> AcyclicCount(const ConjunctiveQuery& q, const Structure& d,
                            size_t limit = SIZE_MAX,
                            YannakakisStats* stats = nullptr,
                            ResourceGovernor* governor = nullptr);

/// Up to max_results satisfying assignments, each indexed by VarId.
/// Output-bounded: the reduced tables contain no dead rows, so the walk
/// never backtracks past a row that fails to extend.
Result<std::vector<std::vector<Element>>> AcyclicEnumerate(
    const ConjunctiveQuery& q, const Structure& d,
    size_t max_results = SIZE_MAX, YannakakisStats* stats = nullptr,
    ResourceGovernor* governor = nullptr);

/// Distinct projections of the satisfying assignments onto `projection`
/// (a list of VarIds, repeats allowed), up to max_results rows. This is
/// CQ answer enumeration when q is a canonical query and `projection` its
/// head. Joins are projected down to (output ∪ connector) columns at
/// every node, keeping intermediates output-bounded. InvalidArgument for
/// out-of-range projection variables.
Result<std::vector<std::vector<Element>>> AcyclicProject(
    const ConjunctiveQuery& q, const Structure& d,
    std::span<const VarId> projection, size_t max_results = SIZE_MAX,
    YannakakisStats* stats = nullptr, ResourceGovernor* governor = nullptr);

/// Containment Q1 ⊆ Q2 for acyclic Q2, in polynomial time. Q1 is
/// arbitrary. Errors mirror Contains(), plus InvalidArgument when Q2
/// (with head markers attached) is not acyclic.
Result<bool> AcyclicContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

}  // namespace cqcs

#endif  // CQCS_CQ_ACYCLIC_H_
