#include "cq/parser.h"

#include <cctype>

#include "common/check.h"
#include "common/strings.h"

namespace cqcs {

namespace {

/// A tiny recursive-descent tokenizer over the rule grammar.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Reads an identifier; empty view on failure.
  std::string_view ReadIdentifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '\'';
      if (pos_ == start) {
        ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_';
      }
      if (!ok) break;
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  size_t position() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

struct RawAtom {
  std::string name;
  std::vector<std::string> args;
};

Status ParseAtomInto(Cursor& cursor, RawAtom* out, bool allow_empty_args) {
  std::string_view name = cursor.ReadIdentifier();
  if (name.empty()) {
    return Status::ParseError("expected a predicate name at position " +
                              std::to_string(cursor.position()));
  }
  out->name = std::string(name);
  if (!cursor.Consume("(")) {
    return Status::ParseError("expected '(' after '" + out->name + "'");
  }
  if (cursor.Consume(")")) {
    if (!allow_empty_args) {
      return Status::ParseError("atom '" + out->name +
                                "' must have at least one argument");
    }
    return Status::OK();
  }
  while (true) {
    std::string_view var = cursor.ReadIdentifier();
    if (var.empty()) {
      return Status::ParseError("expected a variable in atom '" + out->name +
                                "'");
    }
    out->args.emplace_back(var);
    if (cursor.Consume(")")) break;
    if (!cursor.Consume(",")) {
      return Status::ParseError("expected ',' or ')' in atom '" + out->name +
                                "'");
    }
  }
  return Status::OK();
}

Result<ConjunctiveQuery> ParseImpl(std::string_view text,
                                   VocabularyPtr vocab) {
  Cursor cursor(text);
  RawAtom head;
  CQCS_RETURN_IF_ERROR(ParseAtomInto(cursor, &head, /*allow_empty_args=*/true));
  if (!cursor.Consume(":-")) {
    return Status::ParseError("expected ':-' after the head");
  }
  std::vector<RawAtom> body;
  while (true) {
    RawAtom atom;
    CQCS_RETURN_IF_ERROR(
        ParseAtomInto(cursor, &atom, /*allow_empty_args=*/false));
    body.push_back(std::move(atom));
    if (!cursor.Consume(",")) break;
  }
  cursor.Consume(".");
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing input at position " +
                              std::to_string(cursor.position()));
  }

  if (vocab == nullptr) {
    auto inferred = std::make_shared<Vocabulary>();
    for (const RawAtom& atom : body) {
      if (auto existing = inferred->FindRelation(atom.name)) {
        if (inferred->arity(*existing) != atom.args.size()) {
          return Status::ParseError("relation '" + atom.name +
                                    "' used with two different arities");
        }
      } else {
        inferred->AddRelation(atom.name,
                              static_cast<uint32_t>(atom.args.size()));
      }
    }
    vocab = inferred;
  }

  ConjunctiveQuery q(vocab, head.name);
  for (const RawAtom& atom : body) {
    CQCS_RETURN_IF_ERROR(q.AddAtomByName(atom.name, atom.args));
  }
  std::vector<VarId> head_vars;
  head_vars.reserve(head.args.size());
  for (const std::string& name : head.args) {
    auto v = q.FindVar(name);
    if (!v.has_value()) {
      return Status::ParseError("unsafe query: head variable '" + name +
                                "' does not occur in the body");
    }
    head_vars.push_back(*v);
  }
  q.SetHead(std::move(head_vars));
  CQCS_RETURN_IF_ERROR(q.Validate());
  return q;
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    VocabularyPtr vocabulary) {
  return ParseImpl(text, std::move(vocabulary));
}

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  return ParseImpl(text, nullptr);
}

}  // namespace cqcs
