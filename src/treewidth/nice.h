// Nice tree decompositions: every node is a leaf (singleton bag),
// introduce (bag = child bag + one element), forget (bag = child bag - one
// element), or join (two children with identical bags). The textbook
// normal form for treewidth dynamic programming — the parse-tree view the
// paper's Lemma 5.2 proof builds on ([DF99, Ch. 6.4]). Any tree
// decomposition converts to a nice one of the same width with O(width · n)
// nodes.

#ifndef CQCS_TREEWIDTH_NICE_H_
#define CQCS_TREEWIDTH_NICE_H_

#include <optional>

#include "common/status.h"
#include "core/homomorphism.h"
#include "treewidth/decomposition.h"
#include "treewidth/hom_dp.h"

namespace cqcs {

/// Kinds of nodes in a nice decomposition.
enum class NiceNodeKind : uint8_t { kLeaf, kIntroduce, kForget, kJoin };

/// A nice tree decomposition. Node 0 is the root of the first tree in the
/// forest; children precede nothing — as in TreeDecomposition, parents have
/// smaller indices than their children.
struct NiceDecomposition {
  struct Node {
    NiceNodeKind kind = NiceNodeKind::kLeaf;
    std::vector<Element> bag;  // sorted
    uint32_t parent = UINT32_MAX;
    std::vector<uint32_t> children;
    /// For kIntroduce / kForget: the element added to / removed from the
    /// child's bag.
    Element pivot = 0;
  };
  std::vector<Node> nodes;

  int Width() const;
  /// Structural well-formedness + the decomposition conditions for `a`.
  Status ValidateFor(const Structure& a) const;
};

/// Converts a rooted decomposition into a nice one of the same width.
NiceDecomposition MakeNice(const TreeDecomposition& td);

/// Theorem 5.4's DP in its textbook form: tables indexed by bag
/// assignments, transitions per node kind (leaf/introduce/forget/join).
/// Semantically identical to SolveViaTreeDecomposition; kept as an ablation
/// of the two DP formulations.
Result<std::optional<Homomorphism>> SolveViaNiceDecomposition(
    const Structure& a, const Structure& b, const NiceDecomposition& nice,
    TreewidthSolveStats* stats = nullptr);

}  // namespace cqcs

#endif  // CQCS_TREEWIDTH_NICE_H_
