// Tree decompositions of graphs and relational structures (Section 5).
//
// A tree decomposition of a structure A is a tree whose nodes are labeled
// with subsets ("bags") of A's universe such that (1) every bag is nonempty
// (the paper's condition; we additionally allow the degenerate empty
// structure), (2) every tuple of A is contained in some bag, and (3) for
// every element the set of bags containing it forms a subtree. By
// Lemma 5.1 this coincides with tree decompositions of the Gaifman graph.

#ifndef CQCS_TREEWIDTH_DECOMPOSITION_H_
#define CQCS_TREEWIDTH_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/graph.h"
#include "core/structure.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// A rooted tree decomposition. Node 0 is the root (when nonempty); every
/// other node has a parent with a smaller index.
class TreeDecomposition {
 public:
  TreeDecomposition() = default;

  /// Adds a node with the given bag; parent == kNoParent makes it a root
  /// (only node 0 may be a root in a valid decomposition of a connected
  /// graph, but forests are allowed: validation only checks decomposition
  /// properties). Returns the node id.
  static constexpr uint32_t kNoParent = UINT32_MAX;
  uint32_t AddNode(std::vector<Element> bag, uint32_t parent);

  size_t node_count() const { return bags_.size(); }
  const std::vector<Element>& bag(uint32_t node) const { return bags_[node]; }
  uint32_t parent(uint32_t node) const { return parents_[node]; }
  const std::vector<uint32_t>& children(uint32_t node) const {
    return children_[node];
  }

  /// Width = max bag size - 1 (-1 if there are no nodes).
  int Width() const;

  /// Checks the three decomposition conditions against a graph: vertex and
  /// edge coverage, and connectedness of every vertex's bag set.
  Status ValidateFor(const Graph& g) const;

  /// Checks the structure version: every tuple's elements lie in one bag.
  /// (Lemma 5.1: equivalent to ValidateFor(GaifmanGraph(a)).)
  Status ValidateFor(const Structure& a) const;

  /// Diagnostic rendering: one "node -> parent: {bag}" line per node.
  std::string ToString() const;

 private:
  std::vector<std::vector<Element>> bags_;  // each sorted ascending
  std::vector<uint32_t> parents_;
  std::vector<std::vector<uint32_t>> children_;
};

/// Builds a tree decomposition from an elimination order: eliminating v
/// connects its remaining neighbors (fill-in) and creates the bag
/// {v} ∪ N_remaining(v). Width equals the max such bag minus one. The
/// classical equivalence: minimizing over all orders yields the treewidth.
TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<uint32_t>& order);

/// Min-degree heuristic elimination order.
std::vector<uint32_t> MinDegreeOrder(const Graph& g);

/// Min-fill heuristic elimination order (usually tighter, a bit slower).
std::vector<uint32_t> MinFillOrder(const Graph& g);

/// Heuristic decomposition of a structure via its Gaifman graph (min-fill).
TreeDecomposition HeuristicDecomposition(const Structure& a);

/// Governed variant: min-fill's O(n · deg²) selection scans poll the
/// governor once per eliminated vertex, so a deadline or cancellation
/// aborts the ordering with kResourceExhausted instead of running the
/// full quadratic-or-worse pass. `governor` must not be null.
Result<TreeDecomposition> HeuristicDecomposition(const Structure& a,
                                                 ResourceGovernor* governor);

/// Exact treewidth by dynamic programming over vertex subsets
/// (O(2^n · n^2); bounded to n <= 24). Errors with Unsupported beyond that.
Result<int> ExactTreewidth(const Graph& g);

/// The incidence treewidth of a structure: treewidth of its incidence
/// graph, computed with the min-fill heuristic (upper bound).
int HeuristicIncidenceTreewidth(const Structure& a);

}  // namespace cqcs

#endif  // CQCS_TREEWIDTH_DECOMPOSITION_H_
