#include "treewidth/decomposition.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/governor.h"

namespace cqcs {

uint32_t TreeDecomposition::AddNode(std::vector<Element> bag,
                                    uint32_t parent) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  uint32_t id = static_cast<uint32_t>(bags_.size());
  CQCS_CHECK_MSG(parent == kNoParent || parent < id,
                 "parent must precede child");
  bags_.push_back(std::move(bag));
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent != kNoParent) children_[parent].push_back(id);
  return id;
}

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags_) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

namespace {

bool BagContains(const std::vector<Element>& bag, Element e) {
  return std::binary_search(bag.begin(), bag.end(), e);
}

}  // namespace

Status TreeDecomposition::ValidateFor(const Graph& g) const {
  const size_t n = g.vertex_count();
  if (n > 0 && bags_.empty()) {
    return Status::InvalidArgument("no bags for a nonempty graph");
  }
  for (const auto& bag : bags_) {
    if (bag.empty()) return Status::InvalidArgument("empty bag");
    for (Element e : bag) {
      if (e >= n) return Status::InvalidArgument("bag element out of range");
    }
  }
  // (1) vertex coverage and (3) connectedness, per vertex.
  for (Element v = 0; v < n; ++v) {
    size_t containing = 0;
    size_t tops = 0;  // nodes containing v whose parent does not
    for (uint32_t node = 0; node < bags_.size(); ++node) {
      if (!BagContains(bags_[node], v)) continue;
      ++containing;
      uint32_t p = parents_[node];
      if (p == kNoParent || !BagContains(bags_[p], v)) ++tops;
    }
    if (containing == 0) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " is in no bag");
    }
    if (tops != 1) {
      return Status::InvalidArgument(
          "bags containing vertex " + std::to_string(v) +
          " do not form a subtree");
    }
  }
  // (2) edge coverage.
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : g.neighbors(u)) {
      if (v < u) continue;
      bool covered = false;
      for (const auto& bag : bags_) {
        if (BagContains(bag, u) && BagContains(bag, v)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::InvalidArgument("edge {" + std::to_string(u) + "," +
                                       std::to_string(v) + "} is in no bag");
      }
    }
  }
  return Status::OK();
}

Status TreeDecomposition::ValidateFor(const Structure& a) const {
  // Lemma 5.1: a tree decomposition of A is one of its Gaifman graph and
  // vice versa; tuple coverage is implied by clique coverage, but check the
  // tuple condition directly for a sharper error message.
  CQCS_RETURN_IF_ERROR(ValidateFor(GaifmanGraph(a)));
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::span<const Element> tup = r.tuple(t);
      bool covered = false;
      for (const auto& bag : bags_) {
        bool all = true;
        for (Element e : tup) all &= BagContains(bag, e);
        if (all) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::InvalidArgument("a tuple of " + vocab.name(id) +
                                       " is covered by no bag");
      }
    }
  }
  return Status::OK();
}

std::string TreeDecomposition::ToString() const {
  std::ostringstream out;
  for (uint32_t node = 0; node < bags_.size(); ++node) {
    out << node << " -> ";
    if (parents_[node] == kNoParent) {
      out << "root";
    } else {
      out << parents_[node];
    }
    out << ": {";
    for (size_t i = 0; i < bags_[node].size(); ++i) {
      if (i > 0) out << ",";
      out << bags_[node][i];
    }
    out << "}\n";
  }
  return out.str();
}

TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& g, const std::vector<uint32_t>& order) {
  const size_t n = g.vertex_count();
  CQCS_CHECK_MSG(order.size() == n, "order must list every vertex once");
  std::vector<std::set<uint32_t>> adj(n);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.neighbors(v)) adj[v].insert(w);
  }
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) {
    CQCS_CHECK(order[i] < n);
    position[order[i]] = i;
  }
  // Simulate elimination, recording each vertex's bag.
  std::vector<std::vector<Element>> bag_of(n);
  for (uint32_t v : order) {
    std::vector<Element> bag{v};
    for (uint32_t w : adj[v]) bag.push_back(w);
    bag_of[v] = bag;
    // Fill-in among remaining neighbors, then remove v.
    for (uint32_t w1 : adj[v]) {
      for (uint32_t w2 : adj[v]) {
        if (w1 != w2) adj[w1].insert(w2);
      }
      adj[w1].erase(v);
    }
    adj[v].clear();
  }
  // Build the tree in reverse elimination order: the bag of v hangs under
  // the bag of its earliest-eliminated higher neighbor.
  TreeDecomposition out;
  if (n == 0) return out;
  std::vector<uint32_t> node_of(n);
  for (size_t i = n; i-- > 0;) {
    uint32_t v = order[i];
    uint32_t parent = TreeDecomposition::kNoParent;
    size_t best = SIZE_MAX;
    for (Element w : bag_of[v]) {
      if (w == v) continue;
      if (position[w] < best) {
        best = position[w];
        parent = node_of[w];
      }
    }
    node_of[v] = out.AddNode(bag_of[v], parent);
  }
  return out;
}

namespace {

/// Each elimination step is an O(n · deg²) scan, so the governed variant
/// polls once per step; `governor` may be null (ungoverned).
Result<std::vector<uint32_t>> GreedyOrder(const Graph& g, bool min_fill,
                                          ResourceGovernor* governor) {
  const size_t n = g.vertex_count();
  std::vector<std::set<uint32_t>> adj(n);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.neighbors(v)) adj[v].insert(w);
  }
  std::vector<uint8_t> eliminated(n, 0);
  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
    uint32_t best = UINT32_MAX;
    size_t best_score = SIZE_MAX;
    for (uint32_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      size_t score;
      if (min_fill) {
        score = 0;
        for (uint32_t w1 : adj[v]) {
          for (uint32_t w2 : adj[v]) {
            if (w1 < w2 && adj[w1].count(w2) == 0) ++score;
          }
        }
      } else {
        score = adj[v].size();
      }
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    for (uint32_t w1 : adj[best]) {
      for (uint32_t w2 : adj[best]) {
        if (w1 != w2) adj[w1].insert(w2);
      }
      adj[w1].erase(best);
    }
    adj[best].clear();
  }
  return order;
}

}  // namespace

std::vector<uint32_t> MinDegreeOrder(const Graph& g) {
  return *GreedyOrder(g, /*min_fill=*/false, nullptr);
}

std::vector<uint32_t> MinFillOrder(const Graph& g) {
  return *GreedyOrder(g, /*min_fill=*/true, nullptr);
}

TreeDecomposition HeuristicDecomposition(const Structure& a) {
  Graph g = GaifmanGraph(a);
  return DecompositionFromEliminationOrder(g, MinFillOrder(g));
}

Result<TreeDecomposition> HeuristicDecomposition(const Structure& a,
                                                 ResourceGovernor* governor) {
  Graph g = GaifmanGraph(a);
  Result<std::vector<uint32_t>> order =
      GreedyOrder(g, /*min_fill=*/true, governor);
  if (!order.ok()) return order.status();
  // The elimination simulation below re-runs the fill-in; one more poll
  // bounds it to roughly the cost already admitted above.
  CQCS_RETURN_IF_ERROR(governor->Poll());
  return DecompositionFromEliminationOrder(g, *order);
}

Result<int> ExactTreewidth(const Graph& g) {
  const size_t n = g.vertex_count();
  if (n == 0) return -1;
  if (n > 20) {
    return Status::Unsupported(
        "exact treewidth is bounded to 20 vertices; use the heuristics");
  }
  // opt(S) = min over elimination orders of S (eliminated first) of the max
  // bag encountered; Q(S, v) = neighbors of v reachable through S
  // ("On exact algorithms for treewidth", Bodlaender et al.).
  const uint32_t full = static_cast<uint32_t>((1u << n) - 1);
  std::vector<int8_t> memo(static_cast<size_t>(full) + 1, -2);
  memo[0] = -1;

  auto q_size = [&](uint32_t s, uint32_t v) {
    // BFS from v through vertices in s; count reached vertices outside s.
    uint32_t visited = 1u << v;
    std::queue<uint32_t> queue;
    queue.push(v);
    int count = 0;
    while (!queue.empty()) {
      uint32_t x = queue.front();
      queue.pop();
      for (uint32_t w : g.neighbors(x)) {
        if (visited & (1u << w)) continue;
        visited |= 1u << w;
        if (s & (1u << w)) {
          queue.push(w);
        } else {
          ++count;
        }
      }
    }
    return count;
  };

  auto solve = [&](auto&& self, uint32_t s) -> int {
    if (memo[s] != -2) return memo[s];
    int best = INT8_MAX;
    for (uint32_t v = 0; v < n; ++v) {
      if (!(s & (1u << v))) continue;
      uint32_t rest = s & ~(1u << v);
      int sub = self(self, rest);
      int cost = std::max(sub, q_size(rest, v));
      best = std::min(best, cost);
    }
    memo[s] = static_cast<int8_t>(best);
    return best;
  };
  return solve(solve, full);
}

int HeuristicIncidenceTreewidth(const Structure& a) {
  Graph g = IncidenceGraph(a);
  return DecompositionFromEliminationOrder(g, MinFillOrder(g)).Width();
}

}  // namespace cqcs
