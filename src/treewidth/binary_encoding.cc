#include "treewidth/binary_encoding.h"

#include <functional>

#include "common/check.h"

namespace cqcs {

namespace {

/// The coincidence vocabulary is determined by the original vocabulary
/// alone, so encodings of A and B are comparable.
VocabularyPtr CoincidenceVocabulary(const Vocabulary& vocab) {
  auto out = std::make_shared<Vocabulary>();
  for (RelId p = 0; p < vocab.size(); ++p) {
    for (RelId q = 0; q < vocab.size(); ++q) {
      for (uint32_t i = 0; i < vocab.arity(p); ++i) {
        for (uint32_t j = 0; j < vocab.arity(q); ++j) {
          out->AddRelation("E_" + vocab.name(p) + "_" + vocab.name(q) + "_" +
                               std::to_string(i) + "_" + std::to_string(j),
                           2);
        }
      }
    }
  }
  return out;
}

}  // namespace

BinaryEncoded BinaryEncode(const Structure& x) {
  const Vocabulary& vocab = *x.vocabulary();
  VocabularyPtr coincidence = CoincidenceVocabulary(vocab);

  // Element ids of binary(x): tuples in (relation, index) order.
  std::vector<std::pair<RelId, uint32_t>> tuple_of_element;
  std::vector<std::vector<Element>> element_of_tuple(vocab.size());
  for (RelId p = 0; p < vocab.size(); ++p) {
    const Relation& r = x.relation(p);
    element_of_tuple[p].resize(r.tuple_count());
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      element_of_tuple[p][t] = static_cast<Element>(tuple_of_element.size());
      tuple_of_element.emplace_back(p, t);
    }
  }

  Structure encoded(coincidence, tuple_of_element.size());
  RelId out_rel = 0;
  for (RelId p = 0; p < vocab.size(); ++p) {
    for (RelId q = 0; q < vocab.size(); ++q) {
      for (uint32_t i = 0; i < vocab.arity(p); ++i) {
        for (uint32_t j = 0; j < vocab.arity(q); ++j) {
          const Relation& rp = x.relation(p);
          const Relation& rq = x.relation(q);
          for (uint32_t s = 0; s < rp.tuple_count(); ++s) {
            for (uint32_t t = 0; t < rq.tuple_count(); ++t) {
              if (rp.tuple(s)[i] == rq.tuple(t)[j]) {
                encoded.AddTuple(out_rel, {element_of_tuple[p][s],
                                           element_of_tuple[q][t]});
              }
            }
          }
          ++out_rel;
        }
      }
    }
  }
  BinaryEncoded out(std::move(coincidence), std::move(encoded));
  out.tuple_of_element = std::move(tuple_of_element);
  return out;
}

bool HomomorphismExistsViaBinaryEncoding(
    const Structure& a, const Structure& b,
    const std::function<bool(const Structure&, const Structure&)>& solve) {
  // Degenerate cases the encoding cannot see: elements that occur in no
  // tuple are unconstrained, so only the existence of ANY target element
  // matters for them.
  if (a.universe_size() > 0 && b.universe_size() == 0) return false;
  if (a.TotalTuples() == 0) return true;  // all elements unconstrained
  if (b.TotalTuples() == 0) return false;  // some A-tuple has no image
  BinaryEncoded enc_a = BinaryEncode(a);
  BinaryEncoded enc_b = BinaryEncode(b);
  return solve(enc_a.encoded, enc_b.encoded);
}

Result<Homomorphism> DecodeBinaryHomomorphism(const Structure& a,
                                              const Structure& b,
                                              const BinaryEncoded& enc_a,
                                              const BinaryEncoded& enc_b,
                                              const Homomorphism& h_enc) {
  if (h_enc.size() != enc_a.encoded.universe_size()) {
    return Status::InvalidArgument("encoded mapping has wrong domain size");
  }
  if (b.universe_size() == 0 && a.universe_size() > 0) {
    return Status::InvalidArgument("target universe is empty");
  }
  Homomorphism h(a.universe_size(), kUnassigned);
  for (size_t enc_e = 0; enc_e < h_enc.size(); ++enc_e) {
    auto [rel_a, idx_a] = enc_a.tuple_of_element[enc_e];
    auto [rel_b, idx_b] = enc_b.tuple_of_element[h_enc[enc_e]];
    if (rel_a != rel_b) {
      return Status::InvalidArgument(
          "encoded mapping sends a tuple across relations");
    }
    std::span<const Element> tup_a = a.relation(rel_a).tuple(idx_a);
    std::span<const Element> tup_b = b.relation(rel_b).tuple(idx_b);
    for (size_t p = 0; p < tup_a.size(); ++p) {
      if (h[tup_a[p]] != kUnassigned && h[tup_a[p]] != tup_b[p]) {
        // Lemma 5.5's well-definedness argument rules this out for genuine
        // homomorphisms between the encodings.
        return Status::InvalidArgument("inconsistent encoded mapping");
      }
      h[tup_a[p]] = tup_b[p];
    }
  }
  for (Element& v : h) {
    if (v == kUnassigned) v = 0;  // unconstrained element
  }
  CQCS_RETURN_IF_ERROR(CheckHomomorphism(a, b, h));
  return h;
}

}  // namespace cqcs
