#include "treewidth/hom_dp.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace cqcs {

namespace {

struct VecHash {
  size_t operator()(const std::vector<Element>& v) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (Element e : v) h = (h ^ e) * 0x100000001b3ULL;
    return h;
  }
};

/// For each node: map from the assignment's projection onto the
/// parent-intersection to one full bag assignment realizing it (and
/// realizable by the whole subtree below the node).
using NodeTable =
    std::unordered_map<std::vector<Element>, std::vector<Element>, VecHash>;

}  // namespace

Result<std::optional<Homomorphism>> SolveViaTreeDecomposition(
    const Structure& a, const Structure& b,
    const TreeDecomposition& decomposition, TreewidthSolveStats* stats) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_RETURN_IF_ERROR(decomposition.ValidateFor(a));
  if (stats != nullptr) {
    stats->width = decomposition.Width();
    stats->table_entries = 0;
  }
  if (a.universe_size() == 0) {
    return std::optional<Homomorphism>(Homomorphism{});
  }

  const size_t num_nodes = decomposition.node_count();
  const size_t m = b.universe_size();
  const Vocabulary& vocab = *a.vocabulary();

  // Assign every tuple of A to the first node whose bag covers it.
  // tuples_of_node[t] = list of (rel, tuple index).
  std::vector<std::vector<std::pair<RelId, uint32_t>>> tuples_of_node(
      num_nodes);
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::span<const Element> tup = r.tuple(t);
      bool placed = false;
      for (uint32_t node = 0; node < num_nodes && !placed; ++node) {
        const auto& bag = decomposition.bag(node);
        bool covered = true;
        for (Element e : tup) {
          if (!std::binary_search(bag.begin(), bag.end(), e)) {
            covered = false;
            break;
          }
        }
        if (covered) {
          tuples_of_node[node].emplace_back(id, t);
          placed = true;
        }
      }
      CQCS_CHECK(placed);  // guaranteed by ValidateFor
    }
  }

  // Intersection of each node's bag with its parent's bag (positions within
  // the node's bag), empty for roots.
  std::vector<std::vector<size_t>> parent_shared_positions(num_nodes);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    uint32_t p = decomposition.parent(node);
    if (p == TreeDecomposition::kNoParent) continue;
    const auto& bag = decomposition.bag(node);
    const auto& pbag = decomposition.bag(p);
    for (size_t i = 0; i < bag.size(); ++i) {
      if (std::binary_search(pbag.begin(), pbag.end(), bag[i])) {
        parent_shared_positions[node].push_back(i);
      }
    }
  }

  // Bottom-up DP: children have larger indices than parents, so a reverse
  // index sweep processes every child before its parent.
  std::vector<NodeTable> tables(num_nodes);
  std::vector<Element> assign, proj, image;
  for (size_t node_plus1 = num_nodes; node_plus1-- > 0;) {
    uint32_t node = static_cast<uint32_t>(node_plus1);
    const auto& bag = decomposition.bag(node);
    NodeTable& table = tables[node];

    assign.assign(bag.size(), 0);
    bool exhausted = m == 0 && !bag.empty();
    while (!exhausted) {
      if (stats != nullptr) ++stats->table_entries;
      // (a) covered tuples are mapped into B;
      bool ok = true;
      for (auto [rel, t] : tuples_of_node[node]) {
        std::span<const Element> tup = a.relation(rel).tuple(t);
        image.resize(tup.size());
        for (size_t pp = 0; pp < tup.size(); ++pp) {
          size_t pos = static_cast<size_t>(
              std::lower_bound(bag.begin(), bag.end(), tup[pp]) -
              bag.begin());
          image[pp] = assign[pos];
        }
        if (!b.relation(rel).Contains(image)) {
          ok = false;
          break;
        }
      }
      // (b) every child has a subtree assignment agreeing on the shared
      // elements.
      if (ok) {
        for (uint32_t child : decomposition.children(node)) {
          const auto& cbag = decomposition.bag(child);
          proj.clear();
          for (size_t ci : parent_shared_positions[child]) {
            Element e = cbag[ci];
            size_t pos = static_cast<size_t>(
                std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
            proj.push_back(assign[pos]);
          }
          if (tables[child].find(proj) == tables[child].end()) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        proj.clear();
        for (size_t i : parent_shared_positions[node]) proj.push_back(assign[i]);
        table.emplace(proj, assign);  // keep the first witness
      }
      // Odometer.
      size_t pos = 0;
      while (pos < assign.size() &&
             ++assign[pos] == static_cast<Element>(m)) {
        assign[pos] = 0;
        ++pos;
      }
      if (pos == assign.size()) exhausted = true;
      if (bag.empty()) exhausted = true;
    }
    if (table.empty()) return std::optional<Homomorphism>(std::nullopt);
  }

  // Top-down witness extraction.
  Homomorphism h(a.universe_size(), kUnassigned);
  std::vector<uint32_t> stack;
  std::vector<std::vector<Element>> chosen(num_nodes);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    if (decomposition.parent(node) != TreeDecomposition::kNoParent) continue;
    // Root: any table entry works.
    chosen[node] = tables[node].begin()->second;
    stack.push_back(node);
  }
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    const auto& bag = decomposition.bag(node);
    for (size_t i = 0; i < bag.size(); ++i) {
      CQCS_CHECK(h[bag[i]] == kUnassigned || h[bag[i]] == chosen[node][i]);
      h[bag[i]] = chosen[node][i];
    }
    for (uint32_t child : decomposition.children(node)) {
      const auto& cbag = decomposition.bag(child);
      std::vector<Element> proj_key;
      for (size_t ci : parent_shared_positions[child]) {
        Element e = cbag[ci];
        size_t pos = static_cast<size_t>(
            std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
        proj_key.push_back(chosen[node][pos]);
      }
      auto it = tables[child].find(proj_key);
      CQCS_CHECK(it != tables[child].end());
      chosen[child] = it->second;
      stack.push_back(child);
    }
  }
  for (Element v : h) CQCS_CHECK(v != kUnassigned);
  return std::optional<Homomorphism>(std::move(h));
}

Result<std::optional<Homomorphism>> SolveBoundedTreewidth(
    const Structure& a, const Structure& b, TreewidthSolveStats* stats) {
  TreeDecomposition decomposition = HeuristicDecomposition(a);
  return SolveViaTreeDecomposition(a, b, decomposition, stats);
}

}  // namespace cqcs
