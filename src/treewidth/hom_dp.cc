#include "treewidth/hom_dp.h"

#include <algorithm>

#include "common/check.h"
#include "common/governor.h"
#include "common/work_pool.h"
#include "rel/hash_index.h"
#include "rel/table.h"

namespace cqcs {

namespace {

using rel::HashIndex;
using rel::Table;

/// Identity column list [0, width).
std::vector<uint32_t> AllCols(uint32_t width) {
  std::vector<uint32_t> cols(width);
  for (uint32_t c = 0; c < width; ++c) cols[c] = c;
  return cols;
}

}  // namespace

Result<std::optional<Homomorphism>> SolveViaTreeDecomposition(
    const Structure& a, const Structure& b,
    const TreeDecomposition& decomposition, TreewidthSolveStats* stats,
    ResourceGovernor* governor, unsigned num_threads) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
  CQCS_RETURN_IF_ERROR(decomposition.ValidateFor(a));
  const unsigned workers = ResolveThreadCount(num_threads);
  if (stats != nullptr) {
    stats->width = decomposition.Width();
    stats->table_entries = 0;
    stats->table_rows = 0;
    stats->workers = workers;
    stats->morsels = 0;
    stats->steals = 0;
  }
  if (a.universe_size() == 0) {
    return std::optional<Homomorphism>(Homomorphism{});
  }

  const size_t num_nodes = decomposition.node_count();
  const size_t m = b.universe_size();
  const Vocabulary& vocab = *a.vocabulary();

  // element -> containing nodes, CSR. Tuple-to-bag assignment probes the
  // rarest element's short node list instead of scanning every bag.
  std::vector<uint32_t> node_offsets(a.universe_size() + 1, 0);
  // cqcs-lint: allow(unpolled-loop): bounded by sum of bag sizes <= nodes * (width + 1)
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (Element e : decomposition.bag(node)) ++node_offsets[e + 1];
  }
  for (size_t e = 0; e < a.universe_size(); ++e) {
    node_offsets[e + 1] += node_offsets[e];
  }
  std::vector<uint32_t> node_list(node_offsets.back());
  {
    std::vector<uint32_t> fill(node_offsets.begin(), node_offsets.end() - 1);
    // cqcs-lint: allow(unpolled-loop): same sum-of-bag-sizes bound as the counting pass above
    for (uint32_t node = 0; node < num_nodes; ++node) {
      for (Element e : decomposition.bag(node)) node_list[fill[e]++] = node;
    }
  }

  // Assign every tuple of A to a node whose bag covers it: candidates are
  // the nodes holding the tuple's rarest element.
  std::vector<std::vector<std::pair<RelId, uint32_t>>> tuples_of_node(
      num_nodes);
  uint64_t assign_tick = 0;  // governor poll stride over A's tuples
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      if (governor != nullptr && (++assign_tick & 1023) == 0) {
        CQCS_RETURN_IF_ERROR(governor->Poll());
      }
      std::span<const Element> tup = r.tuple(t);
      Element rare = tup[0];
      for (Element e : tup) {
        if (node_offsets[e + 1] - node_offsets[e] <
            node_offsets[rare + 1] - node_offsets[rare]) {
          rare = e;
        }
      }
      bool placed = false;
      for (uint32_t i = node_offsets[rare];
           i < node_offsets[rare + 1] && !placed; ++i) {
        uint32_t node = node_list[i];
        const auto& bag = decomposition.bag(node);
        bool covered = true;
        for (Element e : tup) {
          if (!std::binary_search(bag.begin(), bag.end(), e)) {
            covered = false;
            break;
          }
        }
        if (covered) {
          tuples_of_node[node].emplace_back(id, t);
          placed = true;
        }
      }
      CQCS_CHECK(placed);  // guaranteed by ValidateFor
    }
  }

  // Hash membership indexes on B's relations (only the ones A uses):
  // the DP's inner check becomes an O(1) probe on the flattened tuple
  // data instead of a binary search.
  std::vector<HashIndex> b_member(vocab.size());
  std::vector<uint8_t> b_member_built(vocab.size(), 0);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (auto [rel, t] : tuples_of_node[node]) {
      (void)t;
      if (b_member_built[rel]) continue;
      b_member_built[rel] = 1;
      if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
      const Relation& br = b.relation(rel);
      b_member[rel].AttachGovernor(governor);
      b_member[rel].Build(br.data().data(), br.arity(),
                          static_cast<uint32_t>(br.tuple_count()),
                          AllCols(br.arity()));
    }
  }

  // Intersection of each node's bag with its parent's bag (positions
  // within the node's bag), empty for roots.
  std::vector<std::vector<uint32_t>> parent_shared_positions(num_nodes);
  // cqcs-lint: allow(unpolled-loop): bounded by nodes * width * log(width) — decomposition shape, not data
  for (uint32_t node = 0; node < num_nodes; ++node) {
    uint32_t p = decomposition.parent(node);
    if (p == TreeDecomposition::kNoParent) continue;
    const auto& bag = decomposition.bag(node);
    const auto& pbag = decomposition.bag(p);
    for (size_t i = 0; i < bag.size(); ++i) {
      if (std::binary_search(pbag.begin(), pbag.end(), bag[i])) {
        parent_shared_positions[node].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Bottom-up DP over columnar tables: node i's table holds one full bag
  // assignment per distinct projection onto the parent intersection (the
  // first witness found), indexed by that projection for O(1) child
  // probes. Children have larger indices than parents; the sweep is
  // *level-scheduled* — nodes grouped by depth, deepest level first — so
  // every child's table is complete before its parent runs, and the nodes
  // within one level, which share no data, fan out as one-bag morsels on
  // the shared MorselPool. Emptiness is checked after each level in node
  // order, and per-node entry counts merge in node order, so the answer
  // and stats match the sequential sweep at every thread count.
  std::vector<uint32_t> depth(num_nodes, 0);
  uint32_t max_depth = 0;
  // cqcs-lint: allow(unpolled-loop): one pass over decomposition shape, not data
  for (uint32_t node = 0; node < num_nodes; ++node) {
    uint32_t p = decomposition.parent(node);
    if (p == TreeDecomposition::kNoParent) continue;
    depth[node] = depth[p] + 1;  // parents have smaller indices
    max_depth = std::max(max_depth, depth[node]);
  }
  std::vector<std::vector<uint32_t>> levels(max_depth + 1);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    levels[depth[node]].push_back(node);
  }

  std::vector<Table> tables(num_nodes);
  std::vector<HashIndex> tab_index(num_nodes);
  std::vector<uint64_t> node_entries(num_nodes, 0);
  MorselCounters mc;
  auto flush_counters = [&] {
    if (stats != nullptr) {
      stats->morsels = mc.morsels;
      stats->steals = mc.steals;
    }
  };
  for (size_t d = levels.size(); d-- > 0;) {
    const std::vector<uint32_t>& level = levels[d];
    auto body = [&](unsigned, size_t begin, size_t end) {
      // Per-worker scratch: the odometer state and probe keys are private
      // to the bag being processed.
      std::vector<Element> assign, proj, image;
      uint64_t tick = 0;  // governor poll stride over odometer entries
      for (size_t li = begin; li < end; ++li) {
        const uint32_t node = level[li];
        const auto& bag = decomposition.bag(node);
        tables[node] = Table(static_cast<uint32_t>(bag.size()));
        Table& table = tables[node];
        table.AttachGovernor(governor);
        // Keyed on the parent-shared positions: one row per distinct key.
        tab_index[node].AttachGovernor(governor);
        tab_index[node].Reset(static_cast<uint32_t>(bag.size()),
                              parent_shared_positions[node]);

        assign.assign(bag.size(), 0);
        bool exhausted = m == 0 && !bag.empty();
        while (!exhausted) {
          if (governor != nullptr && (++tick & 1023) == 0 &&
              !governor->Poll().ok()) {
            return false;  // tripped: abandon the level
          }
          ++node_entries[node];
          // (a) covered tuples are mapped into B;
          bool ok = true;
          for (auto [rel, t] : tuples_of_node[node]) {
            std::span<const Element> tup = a.relation(rel).tuple(t);
            image.resize(tup.size());
            for (size_t pp = 0; pp < tup.size(); ++pp) {
              size_t pos = static_cast<size_t>(
                  std::lower_bound(bag.begin(), bag.end(), tup[pp]) -
                  bag.begin());
              image[pp] = assign[pos];
            }
            const Relation& br = b.relation(rel);
            if (b_member[rel].FindFirst(br.data().data(), image) ==
                HashIndex::kNone) {
              ok = false;
              break;
            }
          }
          // (b) every child has a subtree assignment agreeing on the
          // shared elements.
          if (ok) {
            for (uint32_t child : decomposition.children(node)) {
              const auto& cbag = decomposition.bag(child);
              proj.clear();
              for (uint32_t ci : parent_shared_positions[child]) {
                Element e = cbag[ci];
                size_t pos = static_cast<size_t>(
                    std::lower_bound(bag.begin(), bag.end(), e) -
                    bag.begin());
                proj.push_back(assign[pos]);
              }
              if (tab_index[child].FindFirst(tables[child].data(), proj) ==
                  HashIndex::kNone) {
                ok = false;
                break;
              }
            }
          }
          if (ok) {
            // Keep the first witness per parent-intersection key.
            proj.clear();
            for (uint32_t i : parent_shared_positions[node]) {
              proj.push_back(assign[i]);
            }
            if (tab_index[node].FindFirst(table.data(), proj) ==
                HashIndex::kNone) {
              table.AppendRow(assign);
              tab_index[node].Add(
                  table.data(), static_cast<uint32_t>(table.row_count() - 1));
            }
          }
          // Odometer.
          size_t pos = 0;
          while (pos < assign.size() &&
                 ++assign[pos] == static_cast<Element>(m)) {
            assign[pos] = 0;
            ++pos;
          }
          if (pos == assign.size()) exhausted = true;
          if (bag.empty()) exhausted = true;
        }
      }
      return true;
    };
    mc.MergeFrom(MorselPool::Shared().Run(level.size(), workers, 1, body));
    if (governor != nullptr && governor->tripped()) {
      flush_counters();
      CQCS_RETURN_IF_ERROR(governor->TripStatus());
    }
    for (uint32_t node : level) {
      if (stats != nullptr) {
        stats->table_entries += node_entries[node];
        stats->table_rows += tables[node].row_count();
      }
      if (tables[node].empty()) {
        flush_counters();
        return std::optional<Homomorphism>(std::nullopt);
      }
    }
  }
  flush_counters();

  // Top-down witness extraction.
  Homomorphism h(a.universe_size(), kUnassigned);
  std::vector<Element> proj;
  std::vector<uint32_t> stack;
  std::vector<uint32_t> chosen(num_nodes, 0);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    if (decomposition.parent(node) != TreeDecomposition::kNoParent) continue;
    chosen[node] = 0;  // root: any table row works
    stack.push_back(node);
  }
  // cqcs-lint: allow(unpolled-loop): witness walk visits each node once after the DP (which polls) succeeded
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    const auto& bag = decomposition.bag(node);
    std::span<const Element> row = tables[node].row(chosen[node]);
    for (size_t i = 0; i < bag.size(); ++i) {
      CQCS_CHECK(h[bag[i]] == kUnassigned || h[bag[i]] == row[i]);
      h[bag[i]] = row[i];
    }
    for (uint32_t child : decomposition.children(node)) {
      const auto& cbag = decomposition.bag(child);
      proj.clear();
      for (uint32_t ci : parent_shared_positions[child]) {
        Element e = cbag[ci];
        size_t pos = static_cast<size_t>(
            std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
        proj.push_back(row[pos]);
      }
      uint32_t match = tab_index[child].FindFirst(tables[child].data(), proj);
      CQCS_CHECK(match != HashIndex::kNone);
      chosen[child] = match;
      stack.push_back(child);
    }
  }
  for (Element v : h) CQCS_CHECK(v != kUnassigned);
  return std::optional<Homomorphism>(std::move(h));
}

Result<std::optional<Homomorphism>> SolveBoundedTreewidth(
    const Structure& a, const Structure& b, TreewidthSolveStats* stats,
    ResourceGovernor* governor, unsigned num_threads) {
  if (governor == nullptr) {
    TreeDecomposition decomposition = HeuristicDecomposition(a);
    return SolveViaTreeDecomposition(a, b, decomposition, stats,
                                     /*governor=*/nullptr, num_threads);
  }
  Result<TreeDecomposition> decomposition =
      HeuristicDecomposition(a, governor);
  if (!decomposition.ok()) return decomposition.status();
  return SolveViaTreeDecomposition(a, b, *decomposition, stats, governor,
                                   num_threads);
}

}  // namespace cqcs
