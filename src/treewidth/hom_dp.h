// The uniform polynomial-time algorithm for bounded-treewidth sources
// (Theorem 5.4): deciding hom(A -> B) by dynamic programming over a tree
// decomposition of A.
//
// The paper proves Theorem 5.4 by translating A into an ∃FO^{k+1} query and
// evaluating it on B; operationally that evaluation IS the bag-by-bag
// dynamic program below — each bag holds at most k+1 elements (= the k+1
// variables of the formula), and the subtree tables are the relations the
// bottom-up evaluation maintains. Complexity O(#bags · |B|^{w+1} · poly).

#ifndef CQCS_TREEWIDTH_HOM_DP_H_
#define CQCS_TREEWIDTH_HOM_DP_H_

#include <optional>

#include "common/status.h"
#include "core/homomorphism.h"
#include "treewidth/decomposition.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// Statistics from the DP run, for the benchmarks. As with
/// YannakakisStats, workers/morsels are deterministic per (input, thread
/// count) while steals depends on scheduling.
struct TreewidthSolveStats {
  int width = -1;              ///< width of the decomposition used
  size_t table_entries = 0;    ///< total bag-assignment rows considered
  size_t table_rows = 0;       ///< rows kept across all node tables (one
                               ///< per distinct parent-intersection key)
  unsigned workers = 0;        ///< resolved worker count of the run
  uint64_t morsels = 0;        ///< per-bag morsel dispatches
  uint64_t steals = 0;         ///< bags run by pool (non-calling) threads
};

/// Decides hom(A -> B) with a caller-supplied decomposition of A. The
/// decomposition is validated first (InvalidArgument when it is not a tree
/// decomposition of A, or on vocabulary mismatch). Returns a full witness
/// homomorphism or nullopt.
///
/// An optional ResourceGovernor (common/governor.h) bounds the run: the
/// bag-assignment odometer polls it on a stride and the DP tables charge
/// their growth against its memory budget; a trip unwinds with
/// kResourceExhausted and no partial answer.
///
/// `num_threads` (SolveOptions convention: 1 = sequential, 0 = hardware)
/// runs independent bags concurrently: the DP is level-scheduled over the
/// forest — every bag of one depth is processed before any bag of the
/// next-shallower depth — and the bags within a level, which share no
/// data, fan out on the shared MorselPool. Answer and stats (minus
/// workers/steals) are identical at every thread count.
Result<std::optional<Homomorphism>> SolveViaTreeDecomposition(
    const Structure& a, const Structure& b,
    const TreeDecomposition& decomposition,
    TreewidthSolveStats* stats = nullptr,
    ResourceGovernor* governor = nullptr, unsigned num_threads = 1);

/// Convenience: builds a min-fill heuristic decomposition of A and runs the
/// DP. Polynomial whenever A's treewidth is bounded (the heuristic width is
/// bounded too on partial k-trees in practice; the answer is exact always —
/// only the running time depends on the width found). The governor also
/// bounds the min-fill ordering itself.
Result<std::optional<Homomorphism>> SolveBoundedTreewidth(
    const Structure& a, const Structure& b,
    TreewidthSolveStats* stats = nullptr,
    ResourceGovernor* governor = nullptr, unsigned num_threads = 1);

}  // namespace cqcs

#endif  // CQCS_TREEWIDTH_HOM_DP_H_
