// The dual-graph binary encoding of Lemma 5.5: binary(A) has A's tuples as
// its elements and one binary "coincidence" relation E_{P,Q,i,j} per pair of
// relation symbols and argument positions, holding (s, t) when the i-th
// element of s equals the j-th element of t. The lemma:
//
//     hom(A -> B)  iff  hom(binary(A) -> binary(B)),
//
// provided some tuple exists on each side to carry the structure (the
// degenerate case "A has isolated elements but B has none at all" is the
// only mismatch, and is reported by the helper below). The encoding lowers
// the arity of every relation to 2, which is what makes the treewidth
// machinery of Section 5 applicable to high-arity vocabularies.

#ifndef CQCS_TREEWIDTH_BINARY_ENCODING_H_
#define CQCS_TREEWIDTH_BINARY_ENCODING_H_

#include <functional>

#include "common/status.h"
#include "core/homomorphism.h"
#include "core/structure.h"

namespace cqcs {

/// A binary-encoded structure plus bookkeeping to map back.
struct BinaryEncoded {
  /// Vocabulary with one binary E_{P,Q,i,j} relation per symbol/position
  /// pair; shared by encodings of same-vocabulary structures.
  VocabularyPtr vocabulary;
  /// The encoded structure; element t is the t-th tuple of the original in
  /// (relation id, tuple index) order.
  Structure encoded;
  /// For decoding: the (rel, tuple index) of each encoded element.
  std::vector<std::pair<RelId, uint32_t>> tuple_of_element;

  BinaryEncoded(VocabularyPtr v, Structure s)
      : vocabulary(std::move(v)), encoded(std::move(s)) {}
};

/// Builds binary(X). All coincidence pairs are materialized (the full
/// reflexive-symmetric-transitive set the lemma describes).
BinaryEncoded BinaryEncode(const Structure& x);

/// Lemma 5.5 as a decision helper: hom(A -> B) via the encodings, using the
/// supplied solve function on (binary(A), binary(B)). Handles the
/// degenerate cases (no tuples on either side) directly.
bool HomomorphismExistsViaBinaryEncoding(
    const Structure& a, const Structure& b,
    const std::function<bool(const Structure&, const Structure&)>& solve);

/// Decodes a homomorphism between encodings into one between the originals.
/// Precondition: h_enc is a homomorphism binary(A) -> binary(B) and every
/// element of A occurs in some tuple (otherwise those elements are mapped
/// to element 0 of B, which is correct for unconstrained elements when B is
/// nonempty).
Result<Homomorphism> DecodeBinaryHomomorphism(const Structure& a,
                                              const Structure& b,
                                              const BinaryEncoded& enc_a,
                                              const BinaryEncoded& enc_b,
                                              const Homomorphism& h_enc);

}  // namespace cqcs

#endif  // CQCS_TREEWIDTH_BINARY_ENCODING_H_
