#include "treewidth/nice.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace cqcs {

int NiceDecomposition::Width() const {
  int width = -1;
  for (const Node& node : nodes) {
    width = std::max(width, static_cast<int>(node.bag.size()) - 1);
  }
  return width;
}

Status NiceDecomposition::ValidateFor(const Structure& a) const {
  // Structural checks per node kind.
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    if (!std::is_sorted(node.bag.begin(), node.bag.end())) {
      return Status::Internal("bag not sorted");
    }
    switch (node.kind) {
      case NiceNodeKind::kLeaf:
        if (node.bag.size() != 1 || !node.children.empty()) {
          return Status::Internal("malformed leaf node");
        }
        break;
      case NiceNodeKind::kIntroduce: {
        if (node.children.size() != 1) {
          return Status::Internal("introduce node needs one child");
        }
        const Node& child = nodes[node.children[0]];
        std::vector<Element> expected = child.bag;
        expected.insert(std::lower_bound(expected.begin(), expected.end(),
                                         node.pivot),
                        node.pivot);
        if (expected != node.bag ||
            std::binary_search(child.bag.begin(), child.bag.end(),
                               node.pivot)) {
          return Status::Internal("introduce bag mismatch");
        }
        break;
      }
      case NiceNodeKind::kForget: {
        if (node.children.size() != 1) {
          return Status::Internal("forget node needs one child");
        }
        const Node& child = nodes[node.children[0]];
        std::vector<Element> expected = child.bag;
        auto it = std::lower_bound(expected.begin(), expected.end(),
                                   node.pivot);
        if (it == expected.end() || *it != node.pivot) {
          return Status::Internal("forget pivot missing from child");
        }
        expected.erase(it);
        if (expected != node.bag) {
          return Status::Internal("forget bag mismatch");
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        if (node.children.size() != 2) {
          return Status::Internal("join node needs two children");
        }
        if (nodes[node.children[0]].bag != node.bag ||
            nodes[node.children[1]].bag != node.bag) {
          return Status::Internal("join children bags differ");
        }
        break;
      }
    }
    for (uint32_t c : node.children) {
      if (c <= i || c >= nodes.size() || nodes[c].parent != i) {
        return Status::Internal("broken parent/child links");
      }
    }
  }
  // Decomposition conditions via the generic validator.
  TreeDecomposition td;
  for (const Node& node : nodes) {
    td.AddNode(node.bag, node.parent);
  }
  return td.ValidateFor(a);
}

namespace {

class NiceBuilder {
 public:
  explicit NiceBuilder(const TreeDecomposition& td) : td_(td) {}

  NiceDecomposition Build() {
    for (uint32_t node = 0; node < td_.node_count(); ++node) {
      if (td_.parent(node) == TreeDecomposition::kNoParent) {
        BuildSubtree(node, UINT32_MAX);
      }
    }
    return std::move(out_);
  }

 private:
  uint32_t AddNode(NiceNodeKind kind, std::vector<Element> bag,
                   uint32_t parent, Element pivot = 0) {
    uint32_t id = static_cast<uint32_t>(out_.nodes.size());
    NiceDecomposition::Node node;
    node.kind = kind;
    node.bag = std::move(bag);
    node.parent = parent;
    node.pivot = pivot;
    out_.nodes.push_back(std::move(node));
    if (parent != UINT32_MAX) out_.nodes[parent].children.push_back(id);
    return id;
  }

  /// Children of `node` in the original decomposition, with equal-bag
  /// children absorbed (their children promoted) so that every remaining
  /// child's bag differs from this node's bag.
  std::vector<uint32_t> EffectiveChildren(uint32_t node) {
    std::vector<uint32_t> result;
    std::vector<uint32_t> pending(td_.children(node).begin(),
                                  td_.children(node).end());
    while (!pending.empty()) {
      uint32_t c = pending.back();
      pending.pop_back();
      if (td_.bag(c) == td_.bag(node)) {
        pending.insert(pending.end(), td_.children(c).begin(),
                       td_.children(c).end());
      } else {
        result.push_back(c);
      }
    }
    return result;
  }

  /// Builds the nice subtree for original node `node`; its top nice node
  /// (bag = td.bag(node)) is attached under `parent`. Returns the top id.
  uint32_t BuildSubtree(uint32_t node, uint32_t parent) {
    const std::vector<Element>& bag = td_.bag(node);
    std::vector<uint32_t> kids = EffectiveChildren(node);
    if (kids.empty()) {
      return BuildLeafChain(bag, parent);
    }
    if (kids.size() == 1) {
      return BuildConnector(bag, kids[0], parent);
    }
    // Join spine: j-1 join nodes, each with two equal-bag children.
    uint32_t top = AddNode(NiceNodeKind::kJoin, bag, parent);
    uint32_t current = top;
    for (size_t i = 0; i < kids.size(); ++i) {
      bool last_pair = i + 2 == kids.size();
      BuildConnector(bag, kids[i], current);
      if (last_pair) {
        BuildConnector(bag, kids[i + 1], current);
        break;
      }
      if (i + 1 < kids.size() - 1) {
        current = AddNode(NiceNodeKind::kJoin, bag, current);
      }
    }
    return top;
  }

  /// A chain from `bag` down to a singleton leaf (all introduce nodes, then
  /// the leaf). Returns the top id.
  uint32_t BuildLeafChain(const std::vector<Element>& bag, uint32_t parent) {
    CQCS_CHECK(!bag.empty());
    uint32_t top = UINT32_MAX;
    uint32_t current_parent = parent;
    std::vector<Element> current = bag;
    while (current.size() > 1) {
      Element pivot = current.back();
      uint32_t id =
          AddNode(NiceNodeKind::kIntroduce, current, current_parent, pivot);
      if (top == UINT32_MAX) top = id;
      current_parent = id;
      current.pop_back();
    }
    uint32_t leaf = AddNode(NiceNodeKind::kLeaf, current, current_parent);
    return top == UINT32_MAX ? leaf : top;
  }

  /// A chain from `bag` down to td node `child`'s bag (shrink to the
  /// intersection with introduce nodes, grow with forget nodes), ending in
  /// the child's own subtree. Returns the chain's top id.
  uint32_t BuildConnector(const std::vector<Element>& bag, uint32_t child,
                          uint32_t parent) {
    const std::vector<Element>& target = td_.bag(child);
    CQCS_CHECK(bag != target);
    std::vector<Element> removals, additions;
    std::set_difference(bag.begin(), bag.end(), target.begin(), target.end(),
                        std::back_inserter(removals));
    std::set_difference(target.begin(), target.end(), bag.begin(), bag.end(),
                        std::back_inserter(additions));
    uint32_t top = UINT32_MAX;
    uint32_t current_parent = parent;
    std::vector<Element> current = bag;
    // Shrink: each node is an introduce over its (smaller) child.
    for (Element v : removals) {
      uint32_t id =
          AddNode(NiceNodeKind::kIntroduce, current, current_parent, v);
      if (top == UINT32_MAX) top = id;
      current_parent = id;
      current.erase(std::lower_bound(current.begin(), current.end(), v));
    }
    // Grow: each node is a forget over its (larger) child.
    for (Element v : additions) {
      uint32_t id = AddNode(NiceNodeKind::kForget, current, current_parent, v);
      if (top == UINT32_MAX) top = id;
      current_parent = id;
      current.insert(std::lower_bound(current.begin(), current.end(), v), v);
    }
    CQCS_CHECK(current == target);
    uint32_t subtree_top = BuildSubtree(child, current_parent);
    return top == UINT32_MAX ? subtree_top : top;
  }

  const TreeDecomposition& td_;
  NiceDecomposition out_;
};

}  // namespace

NiceDecomposition MakeNice(const TreeDecomposition& td) {
  return NiceBuilder(td).Build();
}

Result<std::optional<Homomorphism>> SolveViaNiceDecomposition(
    const Structure& a, const Structure& b, const NiceDecomposition& nice,
    TreewidthSolveStats* stats) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_RETURN_IF_ERROR(nice.ValidateFor(a));
  if (stats != nullptr) {
    stats->width = nice.Width();
    stats->table_entries = 0;
  }
  if (a.universe_size() == 0) {
    return std::optional<Homomorphism>(Homomorphism{});
  }
  const size_t num_nodes = nice.nodes.size();
  const size_t m = b.universe_size();

  // Tuples checked at a node: leaf — the all-same-element tuples on its
  // element; introduce(v) — tuples containing v and inside the bag. (The
  // lowest bag covering a tuple is always of one of these kinds.)
  OccurrenceIndex occurrences(a);
  auto tuple_ok = [&](std::span<const Element> tup, RelId rel,
                      const std::vector<Element>& bag,
                      const std::vector<Element>& assign) {
    std::vector<Element> image(tup.size());
    for (size_t p = 0; p < tup.size(); ++p) {
      auto it = std::lower_bound(bag.begin(), bag.end(), tup[p]);
      if (it == bag.end() || *it != tup[p]) return true;  // not covered here
      image[p] = assign[static_cast<size_t>(it - bag.begin())];
    }
    return b.relation(rel).Contains(image);
  };

  // Table: assignment (aligned with sorted bag) -> witness payload (the
  // child's assignment at forget nodes; empty otherwise).
  using Table = std::map<std::vector<Element>, std::vector<Element>>;
  std::vector<Table> tables(num_nodes);

  for (size_t idx = num_nodes; idx-- > 0;) {
    const auto& node = nice.nodes[idx];
    Table& table = tables[idx];
    switch (node.kind) {
      case NiceNodeKind::kLeaf: {
        Element x = node.bag[0];
        for (Element bv = 0; bv < m; ++bv) {
          bool ok = true;
          for (const auto& occ : occurrences.occurrences(x)) {
            std::span<const Element> tup =
                a.relation(occ.rel).tuple(occ.tuple_index);
            bool all_x = true;
            for (Element e : tup) all_x &= (e == x);
            if (!all_x) continue;
            std::vector<Element> image(tup.size(), bv);
            if (!a.relation(occ.rel).empty() &&
                !b.relation(occ.rel).Contains(image)) {
              ok = false;
              break;
            }
          }
          if (ok) table.emplace(std::vector<Element>{bv},
                                std::vector<Element>{});
        }
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const Table& child = tables[node.children[0]];
        size_t pivot_pos = static_cast<size_t>(
            std::lower_bound(node.bag.begin(), node.bag.end(), node.pivot) -
            node.bag.begin());
        for (const auto& [child_assign, unused] : child) {
          (void)unused;
          for (Element bv = 0; bv < m; ++bv) {
            std::vector<Element> assign = child_assign;
            assign.insert(assign.begin() + static_cast<ptrdiff_t>(pivot_pos),
                          bv);
            bool ok = true;
            for (const auto& occ : occurrences.occurrences(node.pivot)) {
              std::span<const Element> tup =
                  a.relation(occ.rel).tuple(occ.tuple_index);
              if (!tuple_ok(tup, occ.rel, node.bag, assign)) {
                ok = false;
                break;
              }
            }
            if (ok) table.emplace(std::move(assign), std::vector<Element>{});
          }
        }
        break;
      }
      case NiceNodeKind::kForget: {
        const Table& child = tables[node.children[0]];
        const auto& child_bag = nice.nodes[node.children[0]].bag;
        size_t pivot_pos = static_cast<size_t>(
            std::lower_bound(child_bag.begin(), child_bag.end(),
                             node.pivot) -
            child_bag.begin());
        for (const auto& [child_assign, unused] : child) {
          (void)unused;
          std::vector<Element> assign = child_assign;
          assign.erase(assign.begin() + static_cast<ptrdiff_t>(pivot_pos));
          table.emplace(std::move(assign), child_assign);  // keep a witness
        }
        break;
      }
      case NiceNodeKind::kJoin: {
        const Table& left = tables[node.children[0]];
        const Table& right = tables[node.children[1]];
        for (const auto& [assign, unused] : left) {
          (void)unused;
          if (right.count(assign) > 0) {
            table.emplace(assign, std::vector<Element>{});
          }
        }
        break;
      }
    }
    if (stats != nullptr) stats->table_entries += table.size();
    if (table.empty()) return std::optional<Homomorphism>(std::nullopt);
  }

  // Top-down witness extraction.
  Homomorphism h(a.universe_size(), kUnassigned);
  std::vector<std::vector<Element>> chosen(num_nodes);
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    if (nice.nodes[i].parent != UINT32_MAX) continue;
    chosen[i] = tables[i].begin()->first;
    stack.push_back(i);
  }
  while (!stack.empty()) {
    uint32_t i = stack.back();
    stack.pop_back();
    const auto& node = nice.nodes[i];
    for (size_t p = 0; p < node.bag.size(); ++p) {
      CQCS_CHECK(h[node.bag[p]] == kUnassigned ||
                 h[node.bag[p]] == chosen[i][p]);
      h[node.bag[p]] = chosen[i][p];
    }
    switch (node.kind) {
      case NiceNodeKind::kLeaf:
        break;
      case NiceNodeKind::kIntroduce: {
        size_t pivot_pos = static_cast<size_t>(
            std::lower_bound(node.bag.begin(), node.bag.end(), node.pivot) -
            node.bag.begin());
        std::vector<Element> child_assign = chosen[i];
        child_assign.erase(child_assign.begin() +
                           static_cast<ptrdiff_t>(pivot_pos));
        chosen[node.children[0]] = std::move(child_assign);
        stack.push_back(node.children[0]);
        break;
      }
      case NiceNodeKind::kForget: {
        auto it = tables[i].find(chosen[i]);
        CQCS_CHECK(it != tables[i].end());
        chosen[node.children[0]] = it->second;
        stack.push_back(node.children[0]);
        break;
      }
      case NiceNodeKind::kJoin: {
        chosen[node.children[0]] = chosen[i];
        chosen[node.children[1]] = chosen[i];
        stack.push_back(node.children[0]);
        stack.push_back(node.children[1]);
        break;
      }
    }
  }
  for (Element& v : h) {
    CQCS_CHECK(v != kUnassigned);
  }
  return std::optional<Homomorphism>(std::move(h));
}

}  // namespace cqcs
