// The DFS engine shared by the sequential and parallel solver front ends.
//
// SearchContext was born inside backtracking.cc; the parallel subsystem
// (solver/parallel.cc) needs the same loop — variable/value ordering,
// conflict-directed backjumping, Luby restarts, projection-prefix pruning —
// running inside each worker thread, so it lives here as an internal header.
// It is not part of the public API (include solver/backtracking.h instead).
//
// Two extensions over the PR 2 search make subtree parallelism possible:
//
//  * Subproblem replay. RunSubproblem takes a decision prefix (a list of
//    (variable, value) assignments) and replays it through the ordinary
//    trail machinery before searching the subtree below it. A subproblem is
//    therefore nothing but a path into the sequential search tree, and a
//    worker's propagator reaches the exact domain state the donor had at
//    the split point — same subtree, same node counts.
//
//  * Parallel handles. When constructed with a ParallelHandles pointer the
//    node loop additionally (a) checks a shared cancellation flag, (b)
//    counts nodes against a shared budget so node_limit bounds the whole
//    parallel search, and (c) when idle workers exist and the shared pool
//    is empty, donates the untried values of its shallowest open decision
//    as fresh subproblems (TrySplit). With a null pointer all three checks
//    compile down to one branch per node and the search is byte-for-byte
//    the sequential PR 2 behavior.

#ifndef CQCS_SOLVER_SEARCH_CONTEXT_H_
#define CQCS_SOLVER_SEARCH_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/homomorphism.h"
#include "solver/backtracking.h"
#include "solver/csp.h"
#include "solver/propagator.h"

namespace cqcs {
namespace solver_internal {

/// A decision prefix: assignments in the order they were branched on. Workers
/// replay it (with propagation after each step) to reconstruct the donor's
/// search state, then explore the subtree below exhaustively.
struct Subproblem {
  std::vector<std::pair<Element, Element>> decisions;
};

/// Shared-state handles wired in by the parallel driver. All pointers stay
/// owned by the driver and outlive every worker's SearchContext.
struct ParallelHandles {
  /// Set once, read per node (relaxed): first solution found in a race,
  /// callback asked to stop, or the global node budget ran out.
  std::atomic<bool>* cancel = nullptr;
  /// Number of workers currently idle and waiting for subproblems.
  std::atomic<uint32_t>* want_work = nullptr;
  /// Approximate size of the shared subproblem pool (maintained by the
  /// driver). Splitting is worth it only when the pool is dry.
  std::atomic<size_t>* pool_size = nullptr;
  /// Nodes across all workers; node_limit is enforced against this total.
  std::atomic<uint64_t>* global_nodes = nullptr;
  /// Hands freshly split subproblems to the pool. Called rarely (only when
  /// want_work > 0 and the pool is empty), so a std::function is fine.
  std::function<void(std::vector<Subproblem>)> donate;
};

class SearchContext {
 public:
  SearchContext(const CspInstance& csp, const SolveOptions& options,
                std::span<const Element> projection,
                std::function<bool(const Homomorphism&)> on_solution,
                SolveStats* stats, bool first_solution_only = false,
                const ParallelHandles* par = nullptr);

  /// Root propagation: MAC establishes GAC, forward checking verifies no
  /// domain starts empty. Returns false iff the whole instance is already
  /// refuted (then no subproblem can succeed either). Call once.
  bool PrepareRoot();

  /// Replays `decisions` (empty = the whole tree) and exhausts the subtree
  /// below, including the per-run restart loop for first-solution searches.
  /// Reusable: call repeatedly on the same context with different prefixes;
  /// trail state is fully unwound between calls (residues, dom/wdeg weights
  /// persist — they are heuristic hints, not logical state).
  void RunSubproblem(std::span<const std::pair<Element, Element>> decisions);

  /// The sequential entry point: PrepareRoot + RunSubproblem({}).
  /// Returns the number of callback invocations.
  size_t Run();

  size_t solutions() const { return solutions_; }

 private:
  enum class Step {
    kExhausted,  // subtree fully explored
    kPrune,      // solution found below; unwind to the prune boundary
    kStop,       // abort the whole search (callback said stop / node limit)
    kRestart,    // restart cutoff reached; unwind to the root and rerun
  };

  Step Search(size_t depth);
  Step EmitSolution();
  Element SelectVariable(size_t depth);
  Element SelectLex() const;
  Element SelectMrv() const;
  Element SelectDomWdeg() const;

  /// Counts one search node locally and (in parallel mode) against the
  /// shared budget. Returns false iff node_limit was exceeded — the caller
  /// must stop; in parallel mode this also cancels every other worker.
  bool CountNode();

  /// Donates every untried value of the shallowest open decision frame at or
  /// above `cur_depth` as one subproblem each, truncating the local frame so
  /// the values are explored exactly once (by their stealers). The donated
  /// frame falls back to chronological backtracking: its "all values failed"
  /// conflict union would otherwise cover values it no longer tried.
  void TrySplit(size_t cur_depth);

  const CspInstance& csp_;
  SolveOptions options_;
  std::function<bool(const Homomorphism&)> on_solution_;
  SolveStats* stats_;
  SolveStats owned_stats_;
  Propagator prop_;
  const bool cbj_;
  const bool restarts_;
  const ParallelHandles* par_;
  std::vector<uint8_t> assigned_;
  std::vector<Element> prefix_;
  std::vector<uint8_t> in_prefix_;
  std::vector<std::vector<Element>> values_by_depth_;
  Homomorphism solution_;
  size_t prune_boundary_ = SIZE_MAX;
  size_t solutions_ = 0;
  /// The instance's shared least-constraining value permutation
  /// (CspInstance::LcvValuePermutation), or nullptr unless
  /// ValOrder::kLeastConstraining: var_count x domain_size, flat.
  const Element* lcv_perm_ = nullptr;

  // CBJ plumbing: a failed child leaves its conflict set in fail_set_ (valid
  // only when fail_is_conflict_); conflict_by_depth_ accumulates the value
  // conflicts of the frame at each depth; jump_chain_ measures consecutive
  // skipped levels for the longest_backjump stat.
  size_t cw_ = 0;
  std::vector<uint64_t> fail_set_;
  bool fail_is_conflict_ = false;
  std::vector<std::vector<uint64_t>> conflict_by_depth_;
  uint64_t jump_chain_ = 0;

  // Restart bookkeeping for the current run.
  uint64_t restart_cutoff_ = 0;
  uint64_t run_start_nodes_ = 0;

  // Subproblem replay + splitting state. replay_len_ is the depth offset of
  // Search(0) in the donor's (absolute) tree: frame k here sits at absolute
  // depth k + replay_len_, which is what prune_boundary_ and the projection
  // prefix are measured against. var_by_depth_ / value_idx_by_depth_ record,
  // per open frame, the branched variable and the index of the value
  // currently being explored, so TrySplit can package the untried tail;
  // frame_donated_ marks frames whose CBJ exhaustion argument is void.
  std::vector<std::pair<Element, Element>> replay_;
  size_t replay_len_ = 0;
  std::vector<Element> var_by_depth_;
  std::vector<size_t> value_idx_by_depth_;
  std::vector<uint8_t> frame_donated_;
};

}  // namespace solver_internal
}  // namespace cqcs

#endif  // CQCS_SOLVER_SEARCH_CONTEXT_H_
