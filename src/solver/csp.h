// The uniform homomorphism problem as a constraint network.
//
// Given structures A and B over a common vocabulary, the CSP view is:
// one variable per element of A, domain = universe of B, and one constraint
// per tuple t in a relation R^A requiring h(t) ∈ R^B. This is exactly the
// reformulation in Section 2 of Kolaitis–Vardi; the generic (exponential in
// the worst case) solver over this network is the uniform baseline that the
// paper's tractable cases improve upon.

#ifndef CQCS_SOLVER_CSP_H_
#define CQCS_SOLVER_CSP_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "core/structure.h"

namespace cqcs {

/// One constraint: the A-tuple `scope_tuple` of relation `rel` must map into
/// R^B. `vars` lists the distinct elements of the scope (first-occurrence
/// order); positions with equal elements force equal images.
struct Constraint {
  RelId rel = 0;
  std::vector<Element> scope_tuple;
  std::vector<Element> vars;
};

/// Immutable constraint network extracted from a pair (A, B).
class CspInstance {
 public:
  /// CHECK-fails if the vocabularies differ.
  CspInstance(const Structure& a, const Structure& b);

  const Structure& a() const { return *a_; }
  const Structure& b() const { return *b_; }

  size_t var_count() const { return a_->universe_size(); }
  size_t domain_size() const { return b_->universe_size(); }

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Constraint indices whose scope mentions `var`.
  const std::vector<uint32_t>& constraints_of(Element var) const {
    return constraints_of_var_[var];
  }

  /// Domains with every value allowed.
  std::vector<DynamicBitset> FullDomains() const;

 private:
  const Structure* a_;
  const Structure* b_;
  std::vector<Constraint> constraints_;
  std::vector<std::vector<uint32_t>> constraints_of_var_;
};

/// Shrinks the domains of the variables of `constraints()[ci]` to their
/// GAC-supported values. Returns false iff some domain becomes empty.
/// Appends every variable whose domain shrank to `*changed` (if non-null).
bool ReviseConstraint(const CspInstance& csp, uint32_t ci,
                      std::vector<DynamicBitset>& domains,
                      std::vector<Element>* changed);

/// Establishes generalized arc consistency on `domains` by revising to a
/// fixpoint (AC-3 style queue). Returns false iff a domain wiped out, in
/// which case no homomorphism extends the given domains.
bool EstablishGac(const CspInstance& csp, std::vector<DynamicBitset>& domains);

/// Re-establishes consistency after `seed_var` changed. With `cascade` true
/// this is MAC (revisions propagate to a fixpoint); with false it is plain
/// forward checking (each constraint touching seed_var is revised once).
bool PropagateFrom(const CspInstance& csp, Element seed_var,
                   std::vector<DynamicBitset>& domains, bool cascade = true);

}  // namespace cqcs

#endif  // CQCS_SOLVER_CSP_H_
