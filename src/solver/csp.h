// The uniform homomorphism problem as a constraint network.
//
// Given structures A and B over a common vocabulary, the CSP view is:
// one variable per element of A, domain = universe of B, and one constraint
// per tuple t in a relation R^A requiring h(t) ∈ R^B. This is exactly the
// reformulation in Section 2 of Kolaitis–Vardi; the generic (exponential in
// the worst case) solver over this network is the uniform baseline that the
// paper's tractable cases improve upon.
//
// The instance is preprocessed for fast revision: identical constraints are
// deduplicated, every B-relation gets a (position, value) -> tuple-list
// support index (built once, shared by all constraints on that relation),
// and each constraint carries its first-occurrence positions and repeated-
// position equality pairs so the propagator can test "is this B-tuple still
// alive?" without rediscovering the scope shape. See docs/solver.md.
//
// Thread safety: a constructed CspInstance is logically immutable and safe
// to share across the parallel search's workers — every per-node read
// (constraints, constraints_of, the relations' CSR support indexes, which
// the constructor materializes eagerly) touches only memory written before
// the workers were spawned. The one lazily built cache is
// ValueSupportScores(); the parallel driver (solver/parallel.cc) calls it
// once on the spawning thread when the strategy needs it, so workers only
// ever read it. Callers sharing an instance across threads by other means
// must do the same warm-up.

#ifndef CQCS_SOLVER_CSP_H_
#define CQCS_SOLVER_CSP_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "core/structure.h"

namespace cqcs {

/// One constraint: the A-tuple `scope_tuple` of relation `rel` must map into
/// R^B. `vars` lists the distinct elements of the scope (first-occurrence
/// order); positions with equal elements force equal images.
struct Constraint {
  RelId rel = 0;
  std::vector<Element> scope_tuple;
  std::vector<Element> vars;
  /// var_pos[i] = first position of vars[i] in scope_tuple. A support for
  /// (vars[i], v) is a live B-tuple u with u[var_pos[i]] == v, so candidate
  /// supports come straight from the relation's position index. Empty means
  /// the identity map (scope positions all distinct — the common case,
  /// stored without an allocation).
  std::vector<uint32_t> var_pos;
  /// (p, q) with p > q, scope_tuple[p] == scope_tuple[q], q the first
  /// occurrence: a B-tuple u satisfies the scope's equality pattern iff
  /// u[p] == u[q] for all pairs. Empty for constraints without repeats.
  std::vector<std::pair<uint32_t, uint32_t>> eq_pairs;

  uint32_t pos_of_var(size_t i) const {
    return var_pos.empty() ? static_cast<uint32_t>(i) : var_pos[i];
  }
  /// Start of this constraint's (var slot, value) -> last-support residue
  /// block in the propagator's flat residue array (vars.size() * domain_size
  /// entries).
  size_t residue_offset = 0;
};

/// Immutable constraint network extracted from a pair (A, B).
class CspInstance {
 public:
  /// CHECK-fails if the vocabularies differ.
  CspInstance(const Structure& a, const Structure& b);

  const Structure& a() const { return *a_; }
  const Structure& b() const { return *b_; }

  size_t var_count() const { return a_->universe_size(); }
  size_t domain_size() const { return b_->universe_size(); }

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Constraint indices whose scope mentions `var`.
  const std::vector<uint32_t>& constraints_of(Element var) const {
    return constraints_of_var_[var];
  }

  /// Total residue slots over all constraints (see Constraint::
  /// residue_offset); sizes the propagator's residue array.
  size_t residue_slot_count() const { return residue_slots_; }

  /// Domains with every value allowed.
  std::vector<DynamicBitset> FullDomains() const;

  /// Static least-constraining-value scores, laid out as
  /// scores[var * domain_size + value] = total number of B-tuples
  /// supporting var = value, summed over the constraints on var and read
  /// straight off the shared CSR position index. A higher score means the
  /// value leaves more live tuples in every scope, i.e. constrains the
  /// neighbors less. Built lazily on first use, then cached. NOT thread-safe
  /// on the first call — warm it up before sharing the instance across
  /// threads (the parallel search driver does; see the header comment).
  std::span<const uint64_t> ValueSupportScores() const;

  /// Per-variable value permutation in least-constraining order (highest
  /// ValueSupportScores first, lex tie-break — deterministic), laid out
  /// flat as perm[var * domain_size + i]. The order is static, so it lives
  /// here rather than in per-search (and, in parallel mode, per-worker)
  /// state: one sort per instance, shared by every worker. Same lazy-build
  /// thread-safety caveat as ValueSupportScores.
  std::span<const Element> LcvValuePermutation() const;

 private:
  const Structure* a_;
  const Structure* b_;
  std::vector<Constraint> constraints_;
  std::vector<std::vector<uint32_t>> constraints_of_var_;
  size_t residue_slots_ = 0;
  mutable std::vector<uint64_t> value_support_scores_;
  mutable bool value_support_scores_built_ = false;
  mutable std::vector<Element> lcv_perm_;
  mutable bool lcv_perm_built_ = false;
};

/// Shrinks the domains of the variables of `constraints()[ci]` to their
/// GAC-supported values. Returns false iff some domain becomes empty.
/// Appends every variable whose domain shrank to `*changed` (if non-null).
///
/// These three free functions are one-shot conveniences: each constructs a
/// throwaway Propagator, whose setup is proportional to the whole instance.
/// Calling them in a loop repeats that setup — loops should hold a
/// Propagator (solver/propagator.h) directly, as the search does.
bool ReviseConstraint(const CspInstance& csp, uint32_t ci,
                      std::vector<DynamicBitset>& domains,
                      std::vector<Element>* changed);

/// Establishes generalized arc consistency on `domains` by revising to a
/// fixpoint (AC-3 style queue). Returns false iff a domain wiped out, in
/// which case no homomorphism extends the given domains.
bool EstablishGac(const CspInstance& csp, std::vector<DynamicBitset>& domains);

/// Re-establishes consistency after `seed_var` changed. With `cascade` true
/// this is MAC (revisions propagate to a fixpoint); with false it is plain
/// forward checking (each constraint touching seed_var is revised once).
bool PropagateFrom(const CspInstance& csp, Element seed_var,
                   std::vector<DynamicBitset>& domains, bool cascade = true);

}  // namespace cqcs

#endif  // CQCS_SOLVER_CSP_H_
