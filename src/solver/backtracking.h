// Generic backtracking homomorphism solver — the uniform baseline.
//
// This is the algorithm every instance of the problem admits: search over
// assignments of B-values to A-elements with MRV variable ordering and
// constraint propagation (forward checking or full MAC). Exponential in the
// worst case (the problem is NP-complete, [CM77]); the paper's Sections 3-5
// identify inputs where specialized polynomial algorithms apply.

#ifndef CQCS_SOLVER_BACKTRACKING_H_
#define CQCS_SOLVER_BACKTRACKING_H_

#include <functional>
#include <optional>

#include "core/homomorphism.h"
#include "solver/csp.h"

namespace cqcs {

/// Propagation strength maintained during search.
enum class Propagation {
  kForwardChecking,  ///< Revise only constraints touching the assigned var.
  kMac,              ///< Maintain full generalized arc consistency.
};

/// Tuning and resource limits for the search.
struct SolveOptions {
  Propagation propagation = Propagation::kMac;
  /// Abort after this many search nodes (0 = unlimited). When the limit is
  /// hit, Solve returns nullopt and stats->limit_hit is set: callers must
  /// treat that as "unknown", not "no".
  uint64_t node_limit = 0;
  /// Use the minimum-remaining-values heuristic (else lexicographic order).
  bool mrv = true;
};

/// Search statistics, for the benchmark harnesses.
struct SolveStats {
  uint64_t nodes = 0;
  uint64_t backtracks = 0;
  bool limit_hit = false;
};

/// Backtracking search over a CspInstance.
class BacktrackingSolver {
 public:
  BacktrackingSolver(const Structure& a, const Structure& b,
                     SolveOptions options = {});

  /// Returns a homomorphism A -> B, or nullopt if none exists (or the node
  /// limit was hit — check stats).
  std::optional<Homomorphism> Solve(SolveStats* stats = nullptr);

  /// Invokes `on_solution` for every homomorphism; stop early by returning
  /// false from the callback. Returns the number of solutions delivered.
  size_t ForEachSolution(const std::function<bool(const Homomorphism&)>&
                             on_solution,
                         SolveStats* stats = nullptr);

  /// Enumerates the distinct projections of solutions onto `projection`
  /// (a list of A-elements): this is conjunctive-query evaluation when A is
  /// a canonical database and `projection` its distinguished variables.
  /// The search backtracks immediately after witnessing each projection, so
  /// the cost is per-answer, not per-homomorphism. Results are deduplicated.
  std::vector<std::vector<Element>> EnumerateProjections(
      std::span<const Element> projection, size_t max_results = SIZE_MAX,
      SolveStats* stats = nullptr);

  /// Counts homomorphisms, stopping at `limit`.
  size_t CountSolutions(size_t limit = SIZE_MAX, SolveStats* stats = nullptr);

 private:
  CspInstance csp_;
  SolveOptions options_;
};

/// Convenience one-shot: is there a homomorphism A -> B?
bool HasHomomorphism(const Structure& a, const Structure& b);

/// Convenience one-shot returning a witness.
std::optional<Homomorphism> FindHomomorphism(const Structure& a,
                                             const Structure& b);

}  // namespace cqcs

#endif  // CQCS_SOLVER_BACKTRACKING_H_
