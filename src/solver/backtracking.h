// Generic backtracking homomorphism solver — the uniform baseline.
//
// This is the algorithm every instance of the problem admits: search over
// assignments of B-values to A-elements with constraint propagation (forward
// checking or full MAC), pluggable variable/value ordering, optional
// conflict-directed backjumping, and optional Luby restarts (SearchStrategy).
// Exponential in the worst case (the problem is NP-complete, [CM77]); the
// paper's Sections 3-5 identify inputs where specialized polynomial
// algorithms apply.

#ifndef CQCS_SOLVER_BACKTRACKING_H_
#define CQCS_SOLVER_BACKTRACKING_H_

#include <functional>
#include <optional>

#include "core/homomorphism.h"
#include "solver/csp.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// Propagation strength maintained during search.
enum class Propagation {
  kForwardChecking,  ///< Revise only constraints touching the assigned var.
  kMac,              ///< Maintain full generalized arc consistency.
};

/// Variable-ordering heuristics.
enum class VarOrder {
  kLex,      ///< First unassigned variable, in element order.
  kMrv,      ///< Minimum remaining values, degree tie-break.
  kDomWdeg,  ///< Minimize domain / failure-weight (wdeg); weights count
             ///< constraint wipeouts per scope variable and are halved on
             ///< every restart (Propagator::failure_weight).
};

/// Value-ordering heuristics.
enum class ValOrder {
  kLex,  ///< Increasing value.
  kLeastConstraining,  ///< Most-supported value first, scored statically
                       ///< from the CSR support index
                       ///< (CspInstance::ValueSupportScores); lex tie-break.
};

/// How the search explores the tree. The defaults reproduce the PR 1
/// behavior exactly (MRV, lexicographic values, chronological backtracking,
/// no restarts); each knob is independently switchable.
struct SearchStrategy {
  VarOrder var_order = VarOrder::kMrv;
  ValOrder val_order = ValOrder::kLex;
  /// Conflict-directed backjumping: propagation records, per variable, the
  /// set of decisions responsible for its domain prunings; on failure the
  /// search returns straight to the deepest decision in the conflict set
  /// instead of the chronologically previous one. Sound for all entry
  /// points: once a solution is reported in a subtree, that subtree's
  /// ancestors fall back to chronological backtracking so enumeration
  /// never skips sibling solutions.
  bool backjumping = false;
  /// Luby-sequence restarts (cutoffs restart_base * 1,1,2,1,1,2,4,...
  /// nodes), reusing the trail for the unwind. Only applied by Solve()
  /// (first-solution search): a restarted enumeration would revisit
  /// solutions, so ForEachSolution / CountSolutions / EnumerateProjections
  /// ignore this flag. Complete: cutoffs grow without bound, so some run
  /// exhausts the tree. Restarts never reset the node counter — node_limit
  /// keeps its meaning across runs. Only useful with kDomWdeg: the decayed
  /// failure weights are the one thing that survives the unwind, so under
  /// any other (deterministic) ordering each run re-walks the identical
  /// prefix and restarts are pure overhead.
  bool restarts = false;
  /// Luby unit, in search nodes (values < 1 are treated as 1).
  uint64_t restart_base = 128;
};

/// Tuning and resource limits for the search.
struct SolveOptions {
  Propagation propagation = Propagation::kMac;
  /// Abort after this many search nodes (0 = unlimited). When the limit is
  /// hit, Solve returns nullopt and stats->limit_hit is set: callers must
  /// treat that as "unknown", not "no". The counter is cumulative across
  /// restarts, and with num_threads > 1 it is a *global* budget enforced
  /// across all workers (total nodes may overshoot by at most one in-flight
  /// node per worker before everyone observes the cancellation).
  uint64_t node_limit = 0;
  /// Heuristics: variable/value order, backjumping, restarts.
  SearchStrategy strategy;
  /// Worker threads for the search. 1 (the default) is exactly the
  /// sequential search — byte-for-byte the same behavior and stats as
  /// before this option existed. 0 means one worker per hardware thread.
  /// With more than one worker the search tree is explored by work-stealing
  /// subtree decomposition (see docs/solver.md "Parallel search"): Solve
  /// races workers to the first solution (which witness wins is
  /// nondeterministic, but validity is not), enumeration entry points
  /// deliver the exact sequential solution/projection sets in
  /// nondeterministic order, and callbacks are serialized — never invoked
  /// concurrently.
  unsigned num_threads = 1;
  /// Optional per-request budget (common/governor.h), not owned. Workers
  /// poll it on a node stride; a deadline/memory/cancel trip stops the
  /// search with stats->limit_hit set ("unknown", exactly like node_limit),
  /// with overshoot bounded by the poll stride per worker. nullptr (the
  /// default) costs one branch per node, like an unlimited node budget.
  ResourceGovernor* governor = nullptr;
};

/// Search statistics, for the benchmark harnesses.
struct SolveStats {
  uint64_t nodes = 0;
  uint64_t backtracks = 0;
  /// Levels skipped by conflict-directed backjumping: each unit is one
  /// variable whose remaining values were provably futile and never tried.
  /// Zero when strategy.backjumping is off.
  uint64_t backjumps = 0;
  /// Longest single jump (consecutive levels skipped by one conflict).
  uint64_t longest_backjump = 0;
  /// Completed restarts (strategy.restarts; only Solve() restarts).
  uint64_t restarts = 0;
  /// Largest wipeout explanation seen: decisions in the conflict set at a
  /// domain wipeout. Zero when backjumping is off.
  uint64_t max_conflict_set = 0;
  // -- Parallel search (num_threads > 1; all zero on the sequential path).
  // Per-worker counters are merged deterministically after the join:
  // nodes/backtracks/backjumps/restarts are summed, longest_backjump and
  // max_conflict_set maxed, limit_hit ORed.
  /// Worker threads spawned.
  uint64_t workers = 0;
  /// Split events: a busy worker donated the untried values of its
  /// shallowest open decision to the shared pool.
  uint64_t splits = 0;
  /// Subproblems taken from the shared pool by a worker other than the one
  /// that seeded it (every pool pop except the initial root).
  uint64_t steals = 0;
  bool limit_hit = false;
};

/// Backtracking search over a CspInstance.
class BacktrackingSolver {
 public:
  BacktrackingSolver(const Structure& a, const Structure& b,
                     SolveOptions options = {});

  /// Runs over an externally owned, prebuilt network (which must outlive the
  /// solver). This is the reuse path — repeated solves against the same
  /// (A, B) pair (api/problem.h's compiled HomProblem) skip re-extracting
  /// constraints and rebuilding the CSR support indexes.
  explicit BacktrackingSolver(const CspInstance* csp, SolveOptions options = {});

  // Not copyable/movable: csp_ may point into owned_csp_, and the default
  // operations would leave a copy aimed at the source object's storage.
  BacktrackingSolver(const BacktrackingSolver&) = delete;
  BacktrackingSolver& operator=(const BacktrackingSolver&) = delete;

  /// Returns a homomorphism A -> B, or nullopt if none exists (or the node
  /// limit was hit — check stats).
  std::optional<Homomorphism> Solve(SolveStats* stats = nullptr);

  /// Invokes `on_solution` for every homomorphism; stop early by returning
  /// false from the callback. Returns the number of solutions delivered.
  size_t ForEachSolution(const std::function<bool(const Homomorphism&)>&
                             on_solution,
                         SolveStats* stats = nullptr);

  /// Enumerates the distinct projections of solutions onto `projection`
  /// (a list of A-elements): this is conjunctive-query evaluation when A is
  /// a canonical database and `projection` its distinguished variables.
  /// The search backtracks immediately after witnessing each projection, so
  /// the cost is per-answer, not per-homomorphism. Results are deduplicated.
  std::vector<std::vector<Element>> EnumerateProjections(
      std::span<const Element> projection, size_t max_results = SIZE_MAX,
      SolveStats* stats = nullptr);

  /// Counts homomorphisms, stopping at `limit`.
  size_t CountSolutions(size_t limit = SIZE_MAX, SolveStats* stats = nullptr);

 private:
  /// Populated by the (A, B) constructor; empty when running over an
  /// external instance. `csp_` points at whichever is in effect.
  std::optional<CspInstance> owned_csp_;
  const CspInstance* csp_;
  SolveOptions options_;
};

/// Convenience one-shot: is there a homomorphism A -> B? Routes through the
/// HomEngine front door (api/engine.h, where it is defined), so tractable
/// instances take the paper's polynomial algorithms.
bool HasHomomorphism(const Structure& a, const Structure& b);

/// Convenience one-shot returning a witness. Engine-routed like
/// HasHomomorphism.
std::optional<Homomorphism> FindHomomorphism(const Structure& a,
                                             const Structure& b);

}  // namespace cqcs

#endif  // CQCS_SOLVER_BACKTRACKING_H_
