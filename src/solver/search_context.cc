#include "solver/search_context.h"

#include <algorithm>
#include <bit>

#include "common/bitset.h"
#include "common/check.h"
#include "common/governor.h"

namespace cqcs {
namespace solver_internal {

namespace {

/// Luby sequence, 1-indexed: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8...
uint64_t LubyValue(uint64_t i) {
  for (;;) {
    if (std::has_single_bit(i + 1)) return (i + 1) >> 1;
    i -= std::bit_floor(i + 1) - 1;
  }
}

}  // namespace

SearchContext::SearchContext(const CspInstance& csp,
                             const SolveOptions& options,
                             std::span<const Element> projection,
                             std::function<bool(const Homomorphism&)>
                                 on_solution,
                             SolveStats* stats, bool first_solution_only,
                             const ParallelHandles* par)
    : csp_(csp),
      options_(options),
      on_solution_(std::move(on_solution)),
      stats_(stats != nullptr ? stats : &owned_stats_),
      prop_(csp),
      cbj_(options.strategy.backjumping),
      // A restarted run would re-report every solution already delivered,
      // so restarts only apply when the search stops at the first one.
      restarts_(options.strategy.restarts && first_solution_only),
      par_(par) {
  assigned_.assign(csp_.var_count(), 0);
  in_prefix_.assign(csp_.var_count(), 0);
  // Deduplicated projection prefix: these variables are branched on first,
  // so that after one full solution the search can discard the entire
  // subtree below them (same projection => already reported).
  for (Element v : projection) {
    CQCS_CHECK(v < csp_.var_count());
    if (in_prefix_[v]) continue;
    in_prefix_[v] = 1;
    prefix_.push_back(v);
  }
  prune_boundary_ = projection.empty() ? SIZE_MAX : prefix_.size();
  // One value buffer per depth, sized once: the search itself does not
  // allocate.
  values_by_depth_.resize(csp_.var_count());
  for (auto& values : values_by_depth_) values.reserve(csp_.domain_size());
  solution_.resize(csp_.var_count());
  frame_donated_.assign(csp_.var_count(), 0);
  if (par_ != nullptr) {
    prop_.set_cancel_flag(par_->cancel);
    var_by_depth_.assign(csp_.var_count(), 0);
    value_idx_by_depth_.assign(csp_.var_count(), 0);
  } else if (options_.governor != nullptr) {
    // Sequential governed search: long MAC fixpoints poll the governor's
    // sticky trip flag the same way parallel workers poll the shared
    // cancel. A cancelled fixpoint looks like a wipeout, which only prunes
    // — found solutions stay valid, and the trip check at the end of
    // RunSubproblem turns an exhausted-after-trip run into "unknown".
    prop_.set_cancel_flag(options_.governor->trip_flag());
  }
  if (cbj_) {
    prop_.EnableConflictTracking();
    cw_ = prop_.conflict_words();
    fail_set_.assign(cw_, 0);
    conflict_by_depth_.assign(csp_.var_count(),
                              std::vector<uint64_t>(cw_, 0));
  }
  if (options_.strategy.val_order == ValOrder::kLeastConstraining &&
      csp_.var_count() > 0 && csp_.domain_size() > 0) {
    // The static least-constraining order lives on the instance (one sort,
    // shared by every worker); per node the search just filters it against
    // the live domain instead of re-sorting.
    lcv_perm_ = csp_.LcvValuePermutation().data();
  }
}

bool SearchContext::PrepareRoot() {
  if (options_.propagation == Propagation::kMac) {
    return prop_.EstablishGac();
  }
  // Even under forward checking, empty initial domains mean failure.
  for (Element v = 0; v < csp_.var_count(); ++v) {
    if (prop_.domain_count(v) == 0) return false;
  }
  return true;
}

size_t SearchContext::Run() {
  if (!PrepareRoot()) return solutions_;
  RunSubproblem({});
  return solutions_;
}

void SearchContext::RunSubproblem(
    std::span<const std::pair<Element, Element>> decisions) {
  replay_.assign(decisions.begin(), decisions.end());
  replay_len_ = replay_.size();
  prop_.PushLevel();
  size_t replayed = 0;
  bool ok = true;
  for (size_t i = 0; i < replay_.size() && ok; ++i) {
    const auto [var, value] = replay_[i];
    if (i + 1 == replay_.size()) {
      // The final entry is the stolen value — a branch its donor truncated
      // away and never counted. Charging it here keeps the union of all
      // workers' nodes equal to the sequential tree's (the shared prefix
      // above it was already counted by the donor walking it).
      if (par_ != nullptr &&
          par_->cancel->load(std::memory_order_relaxed)) {
        ok = false;
        break;
      }
      if (!CountNode()) {
        ok = false;
        break;
      }
    }
    if (cbj_) prop_.MarkDecision(var);
    prop_.Assign(var, value);
    assigned_[var] = 1;
    ++replayed;
    if (!prop_.Propagate(
            var, /*cascade=*/options_.propagation == Propagation::kMac)) {
      // Replay of a donated prefix can only genuinely fail at the stolen
      // value (the donor propagated everything above it); a failure that is
      // really a cancelled fixpoint is not a backtrack.
      if (par_ == nullptr ||
          !par_->cancel->load(std::memory_order_relaxed)) {
        ++stats_->backtracks;
      }
      ok = false;
    }
  }
  if (ok) {
    const uint64_t base =
        std::max<uint64_t>(1, options_.strategy.restart_base);
    for (uint64_t run = 1;; ++run) {
      restart_cutoff_ = restarts_ ? base * LubyValue(run) : 0;
      run_start_nodes_ = stats_->nodes;
      if (Search(0) != Step::kRestart) break;
      // The node counter is cumulative: a restart unwinds the trail, not
      // the accounting, so node_limit still bounds the whole search.
      ++stats_->restarts;
      prop_.DecayWeights();
    }
  }
  for (size_t i = 0; i < replayed; ++i) {
    assigned_[replay_[i].first] = 0;
    if (cbj_) prop_.UnmarkDecision(replay_[i].first);
  }
  prop_.PopLevel();
  replay_.clear();
  replay_len_ = 0;
  // A governor trip makes any non-solution outcome unreliable (cancelled
  // fixpoints prune spuriously), so report it through the same channel as
  // an exhausted node budget.
  if (options_.governor != nullptr && options_.governor->tripped()) {
    stats_->limit_hit = true;
  }
}

bool SearchContext::CountNode() {
  ++stats_->nodes;
  // Governed searches poll the request budget on a stride (node 1, then
  // every 128th local node): the same cooperative discipline as the node
  // limit, so after a trip the per-worker overshoot is bounded by the
  // stride instead of one node.
  if (options_.governor != nullptr && (stats_->nodes & 127) == 1) {
    if (!options_.governor->Poll().ok()) {
      stats_->limit_hit = true;
      if (par_ != nullptr) {
        par_->cancel->store(true, std::memory_order_relaxed);
      }
      return false;
    }
  }
  // Unlimited searches never touch the shared counter: a per-node RMW on a
  // line every other worker reads would ping-pong for nothing.
  if (options_.node_limit == 0) return true;
  if (par_ != nullptr) {
    const uint64_t total =
        par_->global_nodes->fetch_add(1, std::memory_order_relaxed) + 1;
    if (total > options_.node_limit) {
      stats_->limit_hit = true;
      par_->cancel->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  if (stats_->nodes > options_.node_limit) {
    stats_->limit_hit = true;
    return false;
  }
  return true;
}

void SearchContext::TrySplit(size_t cur_depth) {
  if (par_->donate == nullptr) return;
  for (size_t k = 0; k <= cur_depth; ++k) {
    // Never split at or below the projection prune boundary: those subtrees
    // are abandoned wholesale after one solution, so donating them would
    // only manufacture duplicate projection rows for the dedup set.
    if (k + replay_len_ >= prune_boundary_) break;
    const size_t next = value_idx_by_depth_[k] + 1;
    std::vector<Element>& vals = values_by_depth_[k];
    if (next >= vals.size()) continue;
    std::vector<std::pair<Element, Element>> base = replay_;
    base.reserve(replay_.size() + k + 1);
    for (size_t j = 0; j < k; ++j) {
      base.emplace_back(var_by_depth_[j],
                        values_by_depth_[j][value_idx_by_depth_[j]]);
    }
    std::vector<Subproblem> subs;
    subs.reserve(vals.size() - next);
    for (size_t i = next; i < vals.size(); ++i) {
      Subproblem sp;
      sp.decisions = base;
      sp.decisions.emplace_back(var_by_depth_[k], vals[i]);
      subs.push_back(std::move(sp));
    }
    vals.resize(next);
    // This frame no longer tries every value itself, so its "all values
    // failed" conflict union would be unsound — fall back to chronological
    // backtracking here (the in-loop jump over deeper conflicts stays
    // valid: it never depends on which sibling values remain).
    frame_donated_[k] = 1;
    par_->donate(std::move(subs));
    return;
  }
}

SearchContext::Step SearchContext::Search(size_t depth) {
  if (depth + replay_len_ == csp_.var_count()) return EmitSolution();
  Element var = SelectVariable(depth);

  std::vector<Element>& values = values_by_depth_[depth];
  values.clear();
  if (lcv_perm_ == nullptr) {
    prop_.ForEachValue(
        var, [&](size_t v) { values.push_back(static_cast<Element>(v)); });
  } else {
    // Walk the precomputed least-constraining order, keeping live values.
    const Element* perm = lcv_perm_ + var * csp_.domain_size();
    for (size_t i = 0; i < csp_.domain_size(); ++i) {
      if (prop_.domain_test(var, perm[i])) values.push_back(perm[i]);
    }
  }
  if (cbj_) {
    std::fill(conflict_by_depth_[depth].begin(),
              conflict_by_depth_[depth].end(), 0);
  }
  frame_donated_[depth] = 0;
  // Once a solution is reported anywhere below this frame, conflict sets
  // stop being grounds for skipping: sibling values may lead to *other*
  // solutions, which a pure-conflict argument says nothing about. The
  // frame then backtracks chronologically and reports no conflict upward.
  bool solution_below = false;

  // Indexed (not range-for): TrySplit may truncate this frame's — or a
  // shallower frame's — value list mid-loop.
  for (size_t vi = 0; vi < values.size(); ++vi) {
    const Element v = values[vi];
    if (par_ != nullptr) {
      if (par_->cancel->load(std::memory_order_relaxed)) return Step::kStop;
      var_by_depth_[depth] = var;
      value_idx_by_depth_[depth] = vi;
      if (par_->want_work->load(std::memory_order_relaxed) > 0 &&
          par_->pool_size->load(std::memory_order_relaxed) == 0) {
        TrySplit(depth);
      }
    }
    if (restarts_ &&
        stats_->nodes - run_start_nodes_ >= restart_cutoff_) {
      return Step::kRestart;
    }
    if (!CountNode()) return Step::kStop;
    prop_.PushLevel();
    if (cbj_) prop_.MarkDecision(var);
    prop_.Assign(var, v);
    assigned_[var] = 1;
    bool consistent = prop_.Propagate(
        var, /*cascade=*/options_.propagation == Propagation::kMac);
    Step child = Step::kExhausted;
    const size_t solutions_before = solutions_;
    if (consistent) {
      child = Search(depth + 1);
    } else if (par_ != nullptr &&
               par_->cancel->load(std::memory_order_relaxed)) {
      // A cancelled fixpoint surfaces as a propagation failure without a
      // real wipeout: conflict_var()/conflict_set are stale, so record no
      // backtrack and no conflict — just unwind.
      child = Step::kStop;
    } else {
      ++stats_->backtracks;
      if (cbj_) {
        // The wipeout's explanation: every decision responsible for the
        // emptied domain. Valid to read before PopLevel rewinds it.
        const Element wiped = prop_.conflict_var();
        const uint64_t* cs = prop_.conflict_set(wiped);
        std::copy(cs, cs + cw_, fail_set_.begin());
        // A wiped *decision* variable lost its other values to its own
        // Assign, which records no reason — charge the decision itself.
        if (bitwords::TestBit(prop_.decision_bits(), wiped)) {
          bitwords::SetBit(fail_set_.data(), wiped);
        }
        fail_is_conflict_ = true;
        jump_chain_ = 0;
        uint64_t size = 0;
        for (size_t wi = 0; wi < cw_; ++wi) {
          size += static_cast<uint64_t>(
              std::popcount(fail_set_[wi] & prop_.decision_bits()[wi]));
        }
        stats_->max_conflict_set =
            std::max(stats_->max_conflict_set, size);
      }
    }
    assigned_[var] = 0;
    if (cbj_) prop_.UnmarkDecision(var);
    prop_.PopLevel();
    if (child == Step::kStop || child == Step::kRestart) return child;
    if (solutions_ != solutions_before) solution_below = true;
    if (child == Step::kPrune) {
      // A solution was reported below. If this variable is outside the
      // projection prefix, sibling values can only repeat the projection.
      if (depth + replay_len_ >= prune_boundary_) {
        fail_is_conflict_ = false;
        return Step::kPrune;
      }
      continue;  // otherwise move on to this variable's next value
    }
    // child == kExhausted: a failed subtree (or failed propagation, which
    // filled fail_set_ above). Conflict-directed backjumping: if the
    // failure's explanation does not mention this frame's variable, no
    // sibling value can change it — return the same conflict upward,
    // skipping the rest of this frame's values.
    if (cbj_ && !solution_below) {
      if (!fail_is_conflict_) {
        solution_below = true;  // deeper frame already saw a solution
      } else if (!bitwords::TestBit(fail_set_.data(), var)) {
        ++stats_->backjumps;
        ++jump_chain_;
        stats_->longest_backjump =
            std::max(stats_->longest_backjump, jump_chain_);
        return Step::kExhausted;  // fail_set_ passes through unchanged
      } else {
        jump_chain_ = 0;
        bitwords::ResetBit(fail_set_.data(), var);
        uint64_t* acc = conflict_by_depth_[depth].data();
        for (size_t wi = 0; wi < cw_; ++wi) acc[wi] |= fail_set_[wi];
      }
    }
  }
  if (cbj_ && !solution_below && !frame_donated_[depth]) {
    // Every value failed: the frame's conflict is the union of the value
    // conflicts plus the reasons this variable's other values were pruned
    // before branching.
    const uint64_t* own = prop_.conflict_set(var);
    const uint64_t* acc = conflict_by_depth_[depth].data();
    for (size_t wi = 0; wi < cw_; ++wi) fail_set_[wi] = acc[wi] | own[wi];
    fail_is_conflict_ = true;
    jump_chain_ = 0;
  } else {
    fail_is_conflict_ = false;
  }
  return Step::kExhausted;
}

SearchContext::Step SearchContext::EmitSolution() {
  for (size_t i = 0; i < solution_.size(); ++i) {
    size_t v = prop_.domain_first(static_cast<Element>(i));
    CQCS_CHECK(v != DynamicBitset::npos);
    solution_[i] = static_cast<Element>(v);
  }
  ++solutions_;
  if (!on_solution_(solution_)) return Step::kStop;
  return Step::kPrune;
}

// One tight scan per heuristic: the selection loop runs at every search
// node, so the strategy dispatch stays outside it.
Element SearchContext::SelectVariable(size_t depth) {
  // Depths are absolute (replay included): a subproblem whose prefix covers
  // the first few projection variables continues with the next one.
  const size_t abs_depth = depth + replay_len_;
  if (abs_depth < prefix_.size()) return prefix_[abs_depth];
  switch (options_.strategy.var_order) {
    case VarOrder::kLex:
      return SelectLex();
    case VarOrder::kMrv:
      return SelectMrv();
    case VarOrder::kDomWdeg:
      return SelectDomWdeg();
  }
  CQCS_CHECK(false);
}

Element SearchContext::SelectLex() const {
  for (Element v = 0; v < csp_.var_count(); ++v) {
    if (!assigned_[v] && !in_prefix_[v]) return v;
  }
  CQCS_CHECK(false);
}

Element SearchContext::SelectMrv() const {
  Element best = kUnassigned;
  size_t best_size = SIZE_MAX;
  size_t best_degree = 0;
  for (Element v = 0; v < csp_.var_count(); ++v) {
    if (assigned_[v] || in_prefix_[v]) continue;
    const size_t size = prop_.domain_count(v);
    const size_t degree = csp_.constraints_of(v).size();
    if (size < best_size || (size == best_size && degree > best_degree)) {
      best = v;
      best_size = size;
      best_degree = degree;
    }
  }
  CQCS_CHECK(best != kUnassigned);
  return best;
}

Element SearchContext::SelectDomWdeg() const {
  Element best = kUnassigned;
  size_t best_size = SIZE_MAX;
  uint64_t best_weight = 1;
  for (Element v = 0; v < csp_.var_count(); ++v) {
    if (assigned_[v] || in_prefix_[v]) continue;
    // Minimize size / weight without division: size_v * w_best <
    // size_best * w_v. Weights are offset by 1 so conflict-free variables
    // compare by domain size alone.
    const size_t size = prop_.domain_count(v);
    const uint64_t weight = prop_.failure_weight(v) + 1;
    if (best == kUnassigned ||
        static_cast<unsigned __int128>(size) * best_weight <
            static_cast<unsigned __int128>(best_size) * weight) {
      best = v;
      best_size = size;
      best_weight = weight;
    }
  }
  CQCS_CHECK(best != kUnassigned);
  return best;
}

}  // namespace solver_internal
}  // namespace cqcs
