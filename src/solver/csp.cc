#include "solver/csp.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/hash.h"
#include "solver/propagator.h"

namespace cqcs {

namespace {

/// Marks duplicate tuples of `ra` (every occurrence after the first) in
/// `*dup`. Open-addressing over tuple ids — one flat probe table, no
/// per-tuple allocation. No-op for relations with < 2 tuples.
void MarkDuplicateTuples(const Relation& ra, std::vector<uint8_t>* dup) {
  const size_t m = ra.tuple_count();
  dup->assign(m, 0);
  if (m < 2) return;
  const uint32_t arity = ra.arity();
  const size_t cap = std::bit_ceil(2 * m);
  const size_t mask = cap - 1;
  std::vector<uint32_t> table(cap, UINT32_MAX);
  const Element* data = ra.data().data();
  for (uint32_t t = 0; t < m; ++t) {
    const Element* tup = data + static_cast<size_t>(t) * arity;
    size_t slot = static_cast<size_t>(Fnv1a64(tup, arity)) & mask;
    while (true) {
      const uint32_t other = table[slot];
      if (other == UINT32_MAX) {
        table[slot] = t;
        break;
      }
      const Element* otup = data + static_cast<size_t>(other) * arity;
      if (std::equal(tup, tup + arity, otup)) {
        (*dup)[t] = 1;
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
}

}  // namespace

CspInstance::CspInstance(const Structure& a, const Structure& b)
    : a_(&a), b_(&b) {
  CQCS_CHECK_MSG(a.vocabulary()->Equals(*b.vocabulary()),
                 "CSP instance requires a common vocabulary");
  const Vocabulary& vocab = *a.vocabulary();
  constraints_of_var_.resize(a.universe_size());
  std::vector<uint8_t> dup;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    // Support index over R^B, built once and shared by every constraint on
    // this relation (see Propagator::Revise).
    b.relation(id).EnsurePositionIndex(
        static_cast<Element>(b.universe_size()));
    // Identical A-tuples yield identical constraints; revising each copy
    // would repeat the exact same work, so keep only the first.
    MarkDuplicateTuples(ra, &dup);
    const uint32_t arity = ra.arity();
    constraints_.reserve(constraints_.size() + ra.tuple_count());
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      if (dup[t]) continue;
      std::span<const Element> tup = ra.tuple(t);
      Constraint c;
      c.rel = id;
      c.scope_tuple.assign(tup.begin(), tup.end());
      bool all_distinct = true;
      for (uint32_t p = 1; p < arity && all_distinct; ++p) {
        for (uint32_t q = 0; q < p; ++q) {
          if (tup[q] == tup[p]) {
            all_distinct = false;
            break;
          }
        }
      }
      if (all_distinct) {
        // Common case: vars == scope positions, var_pos stays empty
        // (identity), no equality pairs.
        c.vars.assign(tup.begin(), tup.end());
      } else {
        for (uint32_t p = 0; p < arity; ++p) {
          uint32_t first = p;
          for (uint32_t q = 0; q < p; ++q) {
            if (tup[q] == tup[p]) {
              first = q;
              break;
            }
          }
          if (first == p) {
            c.vars.push_back(tup[p]);
            c.var_pos.push_back(p);
          } else {
            c.eq_pairs.emplace_back(p, first);
          }
        }
      }
      c.residue_offset = residue_slots_;
      residue_slots_ += c.vars.size() * b.universe_size();
      uint32_t ci = static_cast<uint32_t>(constraints_.size());
      for (Element v : c.vars) constraints_of_var_[v].push_back(ci);
      constraints_.push_back(std::move(c));
    }
  }
}

std::vector<DynamicBitset> CspInstance::FullDomains() const {
  std::vector<DynamicBitset> domains(
      var_count(), DynamicBitset(domain_size(), /*fill=*/true));
  return domains;
}

std::span<const uint64_t> CspInstance::ValueSupportScores() const {
  // Lazy, and deliberately unsynchronized: the only multi-threaded consumer
  // (solver/parallel.cc) materializes the cache on the spawning thread
  // before any worker can get here, after which every access is a read.
  if (!value_support_scores_built_) {
    value_support_scores_built_ = true;
    value_support_scores_.assign(var_count() * domain_size(), 0);
    const size_t d = domain_size();
    for (const Constraint& c : constraints_) {
      const Relation& rb = b_->relation(c.rel);
      for (size_t i = 0; i < c.vars.size(); ++i) {
        uint64_t* row = value_support_scores_.data() + c.vars[i] * d;
        const uint32_t pos = c.pos_of_var(i);
        for (Element v = 0; v < d; ++v) {
          row[v] += rb.TuplesWith(pos, v).size();
        }
      }
    }
  }
  return value_support_scores_;
}

std::span<const Element> CspInstance::LcvValuePermutation() const {
  if (!lcv_perm_built_) {
    lcv_perm_built_ = true;
    const size_t d = domain_size();
    lcv_perm_.resize(var_count() * d);
    const uint64_t* scores = ValueSupportScores().data();
    for (Element var = 0; var < var_count(); ++var) {
      Element* perm = lcv_perm_.data() + var * d;
      for (size_t v = 0; v < d; ++v) perm[v] = static_cast<Element>(v);
      const uint64_t* row = scores + var * d;
      // Least-constraining first: higher static support count means more
      // live B-tuples in every scope the value touches. stable_sort keeps
      // ties in lex order, so runs are deterministic.
      std::stable_sort(perm, perm + d,
                       [row](Element x, Element y) { return row[x] > row[y]; });
    }
  }
  return lcv_perm_;
}

// The vector<DynamicBitset> entry points below are the stable public API
// (tests and one-shot callers); each wraps a throwaway Propagator. The
// search loop keeps one Propagator alive instead — see backtracking.cc.

bool ReviseConstraint(const CspInstance& csp, uint32_t ci,
                      std::vector<DynamicBitset>& domains,
                      std::vector<Element>* changed) {
  Propagator prop(csp);
  prop.LoadDomains(domains);
  bool ok = prop.Revise(ci, changed);
  prop.StoreDomains(&domains);
  return ok;
}

bool EstablishGac(const CspInstance& csp,
                  std::vector<DynamicBitset>& domains) {
  Propagator prop(csp);
  prop.LoadDomains(domains);
  bool ok = prop.EstablishGac();
  prop.StoreDomains(&domains);
  return ok;
}

bool PropagateFrom(const CspInstance& csp, Element seed_var,
                   std::vector<DynamicBitset>& domains, bool cascade) {
  Propagator prop(csp);
  prop.LoadDomains(domains);
  bool ok = prop.Propagate(seed_var, cascade);
  prop.StoreDomains(&domains);
  return ok;
}

}  // namespace cqcs
