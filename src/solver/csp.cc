#include "solver/csp.h"

#include <deque>

#include "common/check.h"

namespace cqcs {

CspInstance::CspInstance(const Structure& a, const Structure& b)
    : a_(&a), b_(&b) {
  CQCS_CHECK_MSG(a.vocabulary()->Equals(*b.vocabulary()),
                 "CSP instance requires a common vocabulary");
  const Vocabulary& vocab = *a.vocabulary();
  constraints_of_var_.resize(a.universe_size());
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    const uint32_t arity = ra.arity();
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      Constraint c;
      c.rel = id;
      std::span<const Element> tup = ra.tuple(t);
      c.scope_tuple.assign(tup.begin(), tup.end());
      for (uint32_t p = 0; p < arity; ++p) {
        bool seen = false;
        for (uint32_t q = 0; q < p; ++q) {
          if (tup[q] == tup[p]) {
            seen = true;
            break;
          }
        }
        if (!seen) c.vars.push_back(tup[p]);
      }
      uint32_t ci = static_cast<uint32_t>(constraints_.size());
      for (Element v : c.vars) constraints_of_var_[v].push_back(ci);
      constraints_.push_back(std::move(c));
    }
  }
}

std::vector<DynamicBitset> CspInstance::FullDomains() const {
  std::vector<DynamicBitset> domains(
      var_count(), DynamicBitset(domain_size(), /*fill=*/true));
  return domains;
}

bool ReviseConstraint(const CspInstance& csp, uint32_t ci,
                      std::vector<DynamicBitset>& domains,
                      std::vector<Element>* changed) {
  const Constraint& c = csp.constraints()[ci];
  const Relation& rb = csp.b().relation(c.rel);
  const uint32_t arity = rb.arity();

  // Supported values per variable of the constraint.
  std::vector<DynamicBitset> support;
  support.reserve(c.vars.size());
  for (size_t i = 0; i < c.vars.size(); ++i) {
    support.emplace_back(csp.domain_size());
  }

  for (uint32_t t = 0; t < rb.tuple_count(); ++t) {
    std::span<const Element> u = rb.tuple(t);
    // Check the B-tuple is consistent with current domains and with repeated
    // occurrences of the same A-element.
    bool ok = true;
    for (uint32_t p = 0; p < arity && ok; ++p) {
      if (!domains[c.scope_tuple[p]].test(u[p])) ok = false;
      for (uint32_t q = p + 1; q < arity && ok; ++q) {
        if (c.scope_tuple[q] == c.scope_tuple[p] && u[q] != u[p]) ok = false;
      }
    }
    if (!ok) continue;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      // Record the image of var i (its first occurrence position).
      for (uint32_t p = 0; p < arity; ++p) {
        if (c.scope_tuple[p] == c.vars[i]) {
          support[i].set(u[p]);
          break;
        }
      }
    }
  }

  for (size_t i = 0; i < c.vars.size(); ++i) {
    Element var = c.vars[i];
    if (domains[var].IsSubsetOf(support[i])) continue;
    domains[var] &= support[i];
    if (changed != nullptr) changed->push_back(var);
    if (domains[var].none()) return false;
  }
  return true;
}

namespace {

bool GacLoop(const CspInstance& csp, std::vector<DynamicBitset>& domains,
             std::deque<uint32_t>& queue, std::vector<uint8_t>& in_queue) {
  std::vector<Element> changed;
  while (!queue.empty()) {
    uint32_t ci = queue.front();
    queue.pop_front();
    in_queue[ci] = 0;
    changed.clear();
    if (!ReviseConstraint(csp, ci, domains, &changed)) return false;
    for (Element var : changed) {
      for (uint32_t cj : csp.constraints_of(var)) {
        if (cj != ci && !in_queue[cj]) {
          in_queue[cj] = 1;
          queue.push_back(cj);
        }
      }
    }
  }
  return true;
}

}  // namespace

bool EstablishGac(const CspInstance& csp,
                  std::vector<DynamicBitset>& domains) {
  std::deque<uint32_t> queue;
  std::vector<uint8_t> in_queue(csp.constraints().size(), 1);
  for (uint32_t ci = 0; ci < csp.constraints().size(); ++ci) {
    queue.push_back(ci);
  }
  return GacLoop(csp, domains, queue, in_queue);
}

bool PropagateFrom(const CspInstance& csp, Element seed_var,
                   std::vector<DynamicBitset>& domains, bool cascade) {
  if (!cascade) {
    for (uint32_t ci : csp.constraints_of(seed_var)) {
      if (!ReviseConstraint(csp, ci, domains, nullptr)) return false;
    }
    return true;
  }
  std::deque<uint32_t> queue;
  std::vector<uint8_t> in_queue(csp.constraints().size(), 0);
  for (uint32_t ci : csp.constraints_of(seed_var)) {
    in_queue[ci] = 1;
    queue.push_back(ci);
  }
  return GacLoop(csp, domains, queue, in_queue);
}

}  // namespace cqcs
