#include "solver/propagator.h"

#include <bit>

#include "common/check.h"

namespace cqcs {

Propagator::Propagator(const CspInstance& csp)
    : csp_(&csp),
      wpd_(bitwords::WordCount(csp.domain_size())),
      cw_(bitwords::WordCount(csp.var_count())) {
  words_.resize(csp.var_count() * wpd_);
  conflict_base_ = words_.size();
  counts_.resize(csp.var_count());
  stamps_.assign(words_.size(), 0);
  residues_.assign(csp.residue_slot_count(), kNoResidue);
  in_queue_.assign(csp.constraints().size(), 0);
  queue_.reserve(csp.constraints().size());
  decision_bits_.assign(cw_, 0);
  weights_.assign(csp.var_count(), 0);
  ResetToFull();
}

void Propagator::EnableConflictTracking() {
  if (track_conflicts_) return;
  CQCS_CHECK_MSG(level_marks_.empty(),
                 "EnableConflictTracking requires the root state");
  track_conflicts_ = true;
  words_.resize(conflict_base_ + csp_->var_count() * cw_, 0);
  stamps_.resize(words_.size(), 0);
}

void Propagator::DecayWeights() {
  for (uint64_t& w : weights_) w >>= 1;
}

void Propagator::ResetToFull() {
  const size_t n = csp_->domain_size();
  const uint64_t tail =
      (n % 64 == 0) ? ~0ULL : (~0ULL >> (64 - (n % 64)));
  for (Element var = 0; var < csp_->var_count(); ++var) {
    uint64_t* d = words_.data() + var * wpd_;
    for (size_t wi = 0; wi < wpd_; ++wi) d[wi] = ~0ULL;
    if (wpd_ > 0) d[wpd_ - 1] = tail;
    counts_[var] = n;
  }
  for (size_t wi = conflict_base_; wi < words_.size(); ++wi) words_[wi] = 0;
  trail_.clear();
  level_marks_.clear();
  stamps_.assign(stamps_.size(), 0);
  level_id_ = 1;
}

void Propagator::LoadDomains(const std::vector<DynamicBitset>& domains) {
  CQCS_CHECK(domains.size() == csp_->var_count());
  for (Element var = 0; var < csp_->var_count(); ++var) {
    CQCS_CHECK(domains[var].size() == csp_->domain_size());
    uint64_t* d = words_.data() + var * wpd_;
    for (size_t wi = 0; wi < wpd_; ++wi) d[wi] = domains[var].word(wi);
    counts_[var] = bitwords::Count(d, wpd_);
  }
  for (size_t wi = conflict_base_; wi < words_.size(); ++wi) words_[wi] = 0;
  trail_.clear();
  level_marks_.clear();
  stamps_.assign(stamps_.size(), 0);
  level_id_ = 1;
}

void Propagator::StoreDomains(std::vector<DynamicBitset>* domains) const {
  domains->assign(csp_->var_count(), DynamicBitset(csp_->domain_size()));
  for (Element var = 0; var < csp_->var_count(); ++var) {
    const uint64_t* d = words_.data() + var * wpd_;
    for (size_t wi = 0; wi < wpd_; ++wi) (*domains)[var].set_word(wi, d[wi]);
  }
}

void Propagator::PushLevel() {
  level_marks_.push_back(trail_.size());
  ++level_id_;
}

void Propagator::PopLevel() {
  CQCS_CHECK(!level_marks_.empty());
  const size_t mark = level_marks_.back();
  level_marks_.pop_back();
  while (trail_.size() > mark) {
    const TrailEntry& e = trail_.back();
    const uint64_t cur = words_[e.slot];
    words_[e.slot] = e.old_word;
    // Conflict-set words (slots past conflict_base_) have no popcount
    // counter to maintain.
    if (e.slot < conflict_base_) {
      counts_[e.slot / wpd_] +=
          static_cast<size_t>(std::popcount(e.old_word)) -
          static_cast<size_t>(std::popcount(cur));
    }
    trail_.pop_back();
  }
  // New id so the next level's first write to any word re-saves it.
  ++level_id_;
}

void Propagator::SaveWord(size_t slot) {
  // Root-level changes (no open level) are permanent: nothing will undo
  // them, so recording would only grow the trail.
  if (level_marks_.empty()) return;
  if (stamps_[slot] == level_id_) return;
  stamps_[slot] = level_id_;
  trail_.push_back(TrailEntry{slot, words_[slot]});
}

void Propagator::Assign(Element var, Element value) {
  const size_t base = var * wpd_;
  const size_t vw = value >> 6;
  for (size_t wi = 0; wi < wpd_; ++wi) {
    const uint64_t target = (wi == vw) ? (1ULL << (value & 63)) : 0ULL;
    if (words_[base + wi] != target) {
      SaveWord(base + wi);
      words_[base + wi] = target;
    }
  }
  counts_[var] = 1;
}

void Propagator::ClearValue(Element var, Element v) {
  const size_t slot = var * wpd_ + (v >> 6);
  SaveWord(slot);
  words_[slot] &= ~(1ULL << (v & 63));
  --counts_[var];
}

bool Propagator::TupleAlive(const Relation& rb, uint32_t t,
                            const Constraint& c) const {
  const Element* u = rb.data().data() + static_cast<size_t>(t) * rb.arity();
  for (const auto& [p, q] : c.eq_pairs) {
    if (u[p] != u[q]) return false;
  }
  const uint32_t arity = rb.arity();
  for (uint32_t p = 0; p < arity; ++p) {
    if (!bitwords::TestBit(words_.data() + c.scope_tuple[p] * wpd_, u[p])) {
      return false;
    }
  }
  return true;
}

void Propagator::RecordPruneReason(const Constraint& c, size_t i) {
  const Element var = c.vars[i];
  const size_t base = conflict_base_ + var * cw_;
  for (size_t j = 0; j < c.vars.size(); ++j) {
    if (j == i) continue;
    const Element u = c.vars[j];
    const uint64_t* from = words_.data() + conflict_base_ + u * cw_;
    for (size_t wi = 0; wi < cw_; ++wi) {
      uint64_t add = from[wi];
      if ((u >> 6) == wi && bitwords::TestBit(decision_bits_.data(), u)) {
        add |= 1ULL << (u & 63);
      }
      if ((words_[base + wi] | add) != words_[base + wi]) {
        SaveWord(base + wi);
        words_[base + wi] |= add;
      }
    }
  }
}

bool Propagator::Revise(uint32_t ci, std::vector<Element>* changed) {
  const Constraint& c = csp_->constraints()[ci];
  const Relation& rb = csp_->b().relation(c.rel);
  const size_t domain_size = csp_->domain_size();
  for (size_t i = 0; i < c.vars.size(); ++i) {
    const Element var = c.vars[i];
    const uint32_t pos = c.pos_of_var(i);
    uint32_t* residue = residues_.data() + c.residue_offset + i * domain_size;
    bool shrank = false;
    ForEachValue(var, [&](size_t value) {
      const Element v = static_cast<Element>(value);
      const uint32_t r = residue[v];
      if (r != kNoResidue && TupleAlive(rb, r, c)) return;
      for (uint32_t t : rb.TuplesWith(pos, v)) {
        if (TupleAlive(rb, t, c)) {
          residue[v] = t;
          return;
        }
      }
      ClearValue(var, v);
      shrank = true;
    });
    if (shrank) {
      if (track_conflicts_) RecordPruneReason(c, i);
      if (changed != nullptr) changed->push_back(var);
      if (counts_[var] == 0) {
        conflict_var_ = var;
        // dom/wdeg: this constraint just failed; its scope variables get
        // heavier so the search branches on them earlier next time.
        for (Element u : c.vars) ++weights_[u];
        return false;
      }
    }
  }
  return true;
}

void Propagator::EnqueueConstraintsOf(Element var, uint32_t except) {
  for (uint32_t cj : csp_->constraints_of(var)) {
    if (cj != except && !in_queue_[cj]) {
      in_queue_[cj] = 1;
      queue_.push_back(cj);
    }
  }
}

bool Propagator::RunQueue() {
  while (head_ < queue_.size()) {
    // Cancelled workers bail out of the fixpoint; the caller's node loop
    // sees the flag next and unwinds, discarding this spurious failure.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      for (size_t k = head_; k < queue_.size(); ++k) in_queue_[queue_[k]] = 0;
      queue_.clear();
      head_ = 0;
      return false;
    }
    const uint32_t ci = queue_[head_++];
    in_queue_[ci] = 0;
    changed_scratch_.clear();
    if (!Revise(ci, &changed_scratch_)) {
      for (size_t k = head_; k < queue_.size(); ++k) in_queue_[queue_[k]] = 0;
      queue_.clear();
      head_ = 0;
      return false;
    }
    for (Element var : changed_scratch_) EnqueueConstraintsOf(var, ci);
  }
  queue_.clear();
  head_ = 0;
  return true;
}

bool Propagator::Propagate(Element seed_var, bool cascade) {
  if (!cascade) {
    for (uint32_t ci : csp_->constraints_of(seed_var)) {
      if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
        return false;
      }
      if (!Revise(ci, nullptr)) return false;
    }
    return true;
  }
  for (uint32_t ci : csp_->constraints_of(seed_var)) {
    if (!in_queue_[ci]) {
      in_queue_[ci] = 1;
      queue_.push_back(ci);
    }
  }
  return RunQueue();
}

bool Propagator::EstablishGac() {
  for (uint32_t ci = 0; ci < csp_->constraints().size(); ++ci) {
    if (!in_queue_[ci]) {
      in_queue_[ci] = 1;
      queue_.push_back(ci);
    }
  }
  return RunQueue();
}

}  // namespace cqcs
