#include "solver/parallel.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "solver/search_context.h"

namespace cqcs {
namespace solver_internal {

namespace {

/// The shared pool plus the idle/termination protocol. Locking discipline:
/// the mutex guards only pool pushes/pops and the busy/done bookkeeping —
/// events that happen once per subproblem, not per node. The per-node hot
/// path (cancellation, split polling, node budget) reads the atomics
/// mirrored next to it without ever taking the lock.
class WorkPool {
 public:
  explicit WorkPool(Subproblem root) {
    pool_.push_back(std::move(root));
    pool_size_.store(1, std::memory_order_relaxed);
  }

  // Each hot atomic on its own cache line: cancel/want_work/pool_size are
  // read by every worker at every node, and global_nodes (node_limit runs)
  // is written by every worker at every node — sharing a line would turn
  // the reads into cross-core misses on each increment.
  alignas(64) std::atomic<bool> cancel{false};
  alignas(64) std::atomic<uint32_t> want_work{0};
  alignas(64) std::atomic<size_t> pool_size_{0};
  alignas(64) std::atomic<uint64_t> global_nodes{0};

  /// Blocks until a subproblem is available (returns true, with `*sp`
  /// filled and the caller marked busy) or the search is over — cancelled,
  /// or pool empty with nobody busy (returns false).
  bool Acquire(Subproblem* sp) {
    MutexLock lock(mu_);
    for (;;) {
      if (cancel.load(std::memory_order_relaxed) || done_) return false;
      if (!pool_.empty()) {
        *sp = std::move(pool_.front());
        pool_.pop_front();
        pool_size_.store(pool_.size(), std::memory_order_relaxed);
        ++pops_;
        ++busy_;
        return true;
      }
      if (busy_ == 0) {
        done_ = true;
        cv_.NotifyAll();
        return false;
      }
      want_work.fetch_add(1, std::memory_order_relaxed);
      cv_.Wait(mu_, [&] {
        return cancel.load(std::memory_order_relaxed) || done_ ||
               !pool_.empty();
      });
      want_work.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Marks the caller idle again; declares the search done if it drained
  /// the last work.
  void Release() {
    MutexLock lock(mu_);
    --busy_;
    if (pool_.empty() && busy_ == 0) {
      done_ = true;
      cv_.NotifyAll();
    }
  }

  /// A busy worker donating freshly split subproblems.
  void Donate(std::vector<Subproblem> subs) {
    if (subs.empty()) return;
    MutexLock lock(mu_);
    ++splits_;
    for (Subproblem& sp : subs) pool_.push_back(std::move(sp));
    pool_size_.store(pool_.size(), std::memory_order_relaxed);
    cv_.NotifyAll();
  }

  /// Wakes every waiter after `cancel` was set (the flag is in the wait
  /// predicate, so lock-then-notify cannot miss anyone).
  void NotifyCancelled() {
    MutexLock lock(mu_);
    cv_.NotifyAll();
  }

  uint64_t splits() const {
    MutexLock lock(mu_);
    return splits_;
  }
  /// Every pop except the initial root came from another worker's donation.
  uint64_t steals() const {
    MutexLock lock(mu_);
    return pops_ > 0 ? pops_ - 1 : 0;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Subproblem> pool_ CQCS_GUARDED_BY(mu_);
  size_t busy_ CQCS_GUARDED_BY(mu_) = 0;
  bool done_ CQCS_GUARDED_BY(mu_) = false;
  uint64_t pops_ CQCS_GUARDED_BY(mu_) = 0;
  uint64_t splits_ CQCS_GUARDED_BY(mu_) = 0;
};

void MergeStats(const SolveStats& in, SolveStats* out) {
  out->nodes += in.nodes;
  out->backtracks += in.backtracks;
  out->backjumps += in.backjumps;
  out->longest_backjump = std::max(out->longest_backjump, in.longest_backjump);
  out->restarts += in.restarts;
  out->max_conflict_set = std::max(out->max_conflict_set, in.max_conflict_set);
  out->limit_hit = out->limit_hit || in.limit_hit;
}

}  // namespace

unsigned ResolveThreadCount(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t ParallelSearch(const CspInstance& csp, const SolveOptions& options,
                      std::span<const Element> projection,
                      const std::function<bool(const Homomorphism&)>&
                          on_solution,
                      SolveStats* stats, bool first_solution_only) {
  const unsigned workers = ResolveThreadCount(options.num_threads);
  CQCS_CHECK(workers > 1);

  // Materialize the lazily built shared caches while still single-threaded:
  // after this, every CspInstance read the workers perform is const and
  // data-race free (see the thread-safety note in solver/csp.h).
  if (options.strategy.val_order == ValOrder::kLeastConstraining) {
    csp.LcvValuePermutation();  // builds ValueSupportScores too
  }

  WorkPool pool(Subproblem{});

  // All solution delivery is serialized here, so the caller's closure needs
  // no internal locking, Solve's first-solution race has exactly one winner,
  // and a false return (or a prior cancellation) suppresses every later
  // delivery fleet-wide.
  Mutex cb_mu;
  size_t delivered = 0;
  auto serialized = [&](const Homomorphism& h) {
    MutexLock lock(cb_mu);
    if (pool.cancel.load(std::memory_order_relaxed)) return false;
    ++delivered;
    const bool keep_going = on_solution(h);
    if (!keep_going) {
      pool.cancel.store(true, std::memory_order_relaxed);
      pool.NotifyCancelled();
    }
    return keep_going;
  };

  ParallelHandles handles;
  handles.cancel = &pool.cancel;
  handles.want_work = &pool.want_work;
  handles.pool_size = &pool.pool_size_;
  handles.global_nodes = &pool.global_nodes;
  handles.donate = [&pool](std::vector<Subproblem> subs) {
    pool.Donate(std::move(subs));
  };

  // Cache-line padded: stats_->nodes is a per-node write, and adjacent
  // workers' stats sharing a line would false-share it.
  struct alignas(64) PaddedStats {
    SolveStats stats;
  };
  std::vector<PaddedStats> worker_stats(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      SearchContext ctx(csp, options, projection, serialized,
                        &worker_stats[w].stats, first_solution_only,
                        &handles);
      // Root propagation is subproblem-independent: if it refutes the
      // instance for one worker it does so for all, and no subproblem can
      // succeed — exit without touching the pool (nobody waits forever:
      // every worker exits the same way). Each worker recomputing it is a
      // deliberate tradeoff: the fixpoints run concurrently (wall-clock ≈
      // one fixpoint, not N), and the redundant run seeds the worker's
      // private AC-2001 residues, which a domain-snapshot handoff from the
      // spawning thread would leave cold.
      if (!ctx.PrepareRoot()) return;
      Subproblem sp;
      while (pool.Acquire(&sp)) {
        ctx.RunSubproblem(sp.decisions);
        pool.Release();
      }
      // A worker that stopped on the node limit has set cancel; make sure
      // waiters see it even if it never went through the pool again.
      if (pool.cancel.load(std::memory_order_relaxed)) {
        pool.NotifyCancelled();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SolveStats owned;
  SolveStats* merged = stats != nullptr ? stats : &owned;
  for (const PaddedStats& ws : worker_stats) MergeStats(ws.stats, merged);
  merged->workers = workers;
  merged->splits = pool.splits();
  merged->steals = pool.steals();
  return delivered;
}

}  // namespace solver_internal
}  // namespace cqcs
