#include "solver/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/work_pool.h"
#include "solver/search_context.h"

namespace cqcs {
namespace solver_internal {

namespace {

// The pool itself — the idle/termination protocol, dynamic-split Donate,
// cancel flag, and split/steal counters — lives in common/work_pool.h
// (shared with the morsel-parallel relational kernel); this module
// instantiates it over decision-prefix subproblems.
using SubproblemPool = WorkPool<Subproblem>;

void MergeStats(const SolveStats& in, SolveStats* out) {
  out->nodes += in.nodes;
  out->backtracks += in.backtracks;
  out->backjumps += in.backjumps;
  out->longest_backjump = std::max(out->longest_backjump, in.longest_backjump);
  out->restarts += in.restarts;
  out->max_conflict_set = std::max(out->max_conflict_set, in.max_conflict_set);
  out->limit_hit = out->limit_hit || in.limit_hit;
}

}  // namespace

size_t ParallelSearch(const CspInstance& csp, const SolveOptions& options,
                      std::span<const Element> projection,
                      const std::function<bool(const Homomorphism&)>&
                          on_solution,
                      SolveStats* stats, bool first_solution_only) {
  const unsigned workers = ResolveThreadCount(options.num_threads);
  CQCS_CHECK(workers > 1);

  // Materialize the lazily built shared caches while still single-threaded:
  // after this, every CspInstance read the workers perform is const and
  // data-race free (see the thread-safety note in solver/csp.h).
  if (options.strategy.val_order == ValOrder::kLeastConstraining) {
    csp.LcvValuePermutation();  // builds ValueSupportScores too
  }

  SubproblemPool pool(Subproblem{});

  // All solution delivery is serialized here, so the caller's closure needs
  // no internal locking, Solve's first-solution race has exactly one winner,
  // and a false return (or a prior cancellation) suppresses every later
  // delivery fleet-wide.
  Mutex cb_mu;
  size_t delivered = 0;
  auto serialized = [&](const Homomorphism& h) {
    MutexLock lock(cb_mu);
    if (pool.cancel.load(std::memory_order_relaxed)) return false;
    ++delivered;
    const bool keep_going = on_solution(h);
    if (!keep_going) {
      pool.cancel.store(true, std::memory_order_relaxed);
      pool.NotifyCancelled();
    }
    return keep_going;
  };

  ParallelHandles handles;
  handles.cancel = &pool.cancel;
  handles.want_work = &pool.want_work;
  handles.pool_size = &pool.pool_size_;
  handles.global_nodes = &pool.global_nodes;
  handles.donate = [&pool](std::vector<Subproblem> subs) {
    pool.Donate(std::move(subs));
  };

  // Cache-line padded: stats_->nodes is a per-node write, and adjacent
  // workers' stats sharing a line would false-share it.
  struct alignas(64) PaddedStats {
    SolveStats stats;
  };
  std::vector<PaddedStats> worker_stats(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      SearchContext ctx(csp, options, projection, serialized,
                        &worker_stats[w].stats, first_solution_only,
                        &handles);
      // Root propagation is subproblem-independent: if it refutes the
      // instance for one worker it does so for all, and no subproblem can
      // succeed — exit without touching the pool (nobody waits forever:
      // every worker exits the same way). Each worker recomputing it is a
      // deliberate tradeoff: the fixpoints run concurrently (wall-clock ≈
      // one fixpoint, not N), and the redundant run seeds the worker's
      // private AC-2001 residues, which a domain-snapshot handoff from the
      // spawning thread would leave cold.
      if (!ctx.PrepareRoot()) return;
      Subproblem sp;
      while (pool.Acquire(&sp)) {
        ctx.RunSubproblem(sp.decisions);
        pool.Release();
      }
      // A worker that stopped on the node limit has set cancel; make sure
      // waiters see it even if it never went through the pool again.
      if (pool.cancel.load(std::memory_order_relaxed)) {
        pool.NotifyCancelled();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SolveStats owned;
  SolveStats* merged = stats != nullptr ? stats : &owned;
  for (const PaddedStats& ws : worker_stats) MergeStats(ws.stats, merged);
  merged->workers = workers;
  merged->splits = pool.splits();
  merged->steals = pool.steals();
  return delivered;
}

}  // namespace solver_internal
}  // namespace cqcs
