// Work-stealing parallel subtree search for the uniform homomorphism solver.
//
// The search tree of the NP-complete uniform problem is embarrassingly
// parallel: subtrees share no mutable state, and the trail-based Propagator
// already isolates everything a subtree exploration touches. This module
// turns that into wall-clock speedup with the classic CP decomposition:
//
//   * A shared pool of *subproblems* — decision prefixes into the
//     sequential search tree (solver_internal::Subproblem).
//   * N worker threads, each owning a private Propagator/SearchContext.
//     A worker pops a subproblem, replays its prefix through the trail, and
//     exhausts the subtree below it.
//   * Dynamic splitting on demand: while any worker is idle and the pool is
//     dry, busy workers donate the untried values of their shallowest open
//     decision — the largest subtrees they can prove they have not started.
//   * An atomic first-solution/cancellation flag checked in every worker's
//     node loop (and inside long propagation fixpoints), so Solve stops the
//     fleet as soon as one worker wins the race.
//
// Callbacks are serialized behind one mutex, so the closures the public
// entry points build (dedup sets, counters, first-witness capture) need no
// locking of their own. Determinism guarantees: enumeration entry points
// produce the exact sequential solution multiset (each subtree is explored
// by exactly one worker) in nondeterministic *order*; Solve returns a valid
// witness but which one depends on scheduling; per-worker stats merge into
// totals that are scheduling-dependent except under the default strategy,
// where the node total equals the sequential tree's (see docs/solver.md).
//
// This header is internal — solver/backtracking.h is the public API and
// routes here when SolveOptions::num_threads resolves to more than one.

#ifndef CQCS_SOLVER_PARALLEL_H_
#define CQCS_SOLVER_PARALLEL_H_

#include <functional>
#include <span>

#include "common/work_pool.h"
#include "core/homomorphism.h"
#include "solver/backtracking.h"
#include "solver/csp.h"

namespace cqcs {
namespace solver_internal {

/// SolveOptions::num_threads -> actual worker count: 0 means one per
/// hardware thread (never less than 1). The mapping lives in
/// common/work_pool.h (shared with the relational kernel); this forwarder
/// keeps historical solver_internal:: call sites compiling unchanged.
inline unsigned ResolveThreadCount(unsigned num_threads) {
  return cqcs::ResolveThreadCount(num_threads);
}

/// Runs the full search with ResolveThreadCount(options.num_threads)
/// workers. Mirrors SearchContext::Run: `on_solution` is invoked once per
/// solution found (serialized; returning false cancels every worker), and
/// the return value is the number of callback invocations. `projection`
/// enables the projection-prefix pruning exactly as in the sequential
/// search. Requires options.num_threads to resolve to > 1 — the sequential
/// path never comes through here.
size_t ParallelSearch(const CspInstance& csp, const SolveOptions& options,
                      std::span<const Element> projection,
                      const std::function<bool(const Homomorphism&)>&
                          on_solution,
                      SolveStats* stats, bool first_solution_only);

}  // namespace solver_internal
}  // namespace cqcs

#endif  // CQCS_SOLVER_PARALLEL_H_
