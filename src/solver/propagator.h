// Trail-based propagation engine for the backtracking solver.
//
// The propagator owns all search-time mutable state so that one instance is
// reused across the entire search with zero per-node allocation:
//
//  * Domains live in one flat uint64_t array (var_count x words-per-domain)
//    with an incrementally maintained popcount per variable. MRV reads a
//    counter instead of popcounting a bitset.
//  * Mutations are undone through a trail: before the first write to a word
//    within a level, the old word is recorded; PopLevel rewinds the trail.
//    Backtracking costs O(words actually changed), not O(total domain bits)
//    as the previous save-everything snapshot did.
//  * Revision is AC-2001/3rm style: for each (constraint, var slot, value)
//    a residue caches the last B-tuple found to support the value. A revise
//    first rechecks the residue (usually still alive); only on failure does
//    it walk the relation's (position, value) tuple list — never the whole
//    relation. Residues are hints, so they survive backtracking unmanaged.
//  * Optional conflict tracking (EnableConflictTracking) maintains, per
//    variable, the set of decision variables responsible for its domain
//    prunings. Conflict sets live in the same flat word array as the
//    domains, so the one trail rewinds both in lockstep; the search reads
//    them to implement conflict-directed backjumping.
//  * Per-variable failure weights (dom/wdeg): every constraint wipeout
//    bumps the weight of each variable in the failing constraint's scope.
//    Weights are heuristic state — never trailed, halved on restart.
//
// Threading contract: a Propagator is single-threaded state. The parallel
// search (solver/parallel.cc) gives every worker its own instance; what they
// share is only the immutable CspInstance (see the thread-safety note in
// solver/csp.h). The one concession to parallelism here is an optional
// cancellation flag (set_cancel_flag): a long MAC fixpoint polls it once per
// queue iteration so a cancelled worker aborts mid-propagation instead of
// finishing a doomed revision cascade.
//
// See docs/solver.md for the full architecture.

#ifndef CQCS_SOLVER_PROPAGATOR_H_
#define CQCS_SOLVER_PROPAGATOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "solver/csp.h"

namespace cqcs {

class Propagator {
 public:
  explicit Propagator(const CspInstance& csp);

  const CspInstance& csp() const { return *csp_; }

  /// Resets every domain to full and discards the trail (root state).
  void ResetToFull();

  /// Overwrites the domains from `domains` (size var_count, each of size
  /// domain_size) and discards the trail. For the free-function wrappers.
  void LoadDomains(const std::vector<DynamicBitset>& domains);

  /// Copies the current domains out (resizing `*domains` as needed).
  void StoreDomains(std::vector<DynamicBitset>* domains) const;

  // -- Domain queries ------------------------------------------------------

  size_t domain_count(Element var) const { return counts_[var]; }

  bool domain_test(Element var, Element v) const {
    return bitwords::TestBit(words_.data() + var * wpd_, v);
  }

  /// Lowest value in the domain, or DynamicBitset::npos if empty.
  size_t domain_first(Element var) const {
    return bitwords::FindFirst(words_.data() + var * wpd_, wpd_);
  }

  /// Calls fn(value) for every domain value of `var` in increasing order.
  template <typename Fn>
  void ForEachValue(Element var, Fn fn) const {
    bitwords::ForEachSetBit(words_.data() + var * wpd_, wpd_, fn);
  }

  // -- Search interface ----------------------------------------------------

  /// Opens an undo scope. Every domain change until the matching PopLevel
  /// is recorded and undone by it. Levels nest.
  void PushLevel();

  /// Rewinds all domain changes since the matching PushLevel.
  void PopLevel();

  /// Restricts var's domain to {value} (value must be in the domain).
  void Assign(Element var, Element value);

  /// Re-establishes consistency after `seed_var` changed: MAC to fixpoint
  /// when `cascade`, else one revise per constraint of seed_var (forward
  /// checking). Returns false iff a domain wiped out.
  bool Propagate(Element seed_var, bool cascade);

  /// Revises every constraint to a fixpoint (root GAC).
  bool EstablishGac();

  /// Revises one constraint; appends shrunk variables to `*changed` (if
  /// non-null). Returns false iff a domain wiped out.
  bool Revise(uint32_t ci, std::vector<Element>* changed);

  // -- Conflict tracking (for conflict-directed backjumping) ---------------

  /// Turns on conflict-set maintenance. Must be called at the root (no open
  /// levels); allocates var_count x WordCount(var_count) extra trailed words.
  /// Idempotent.
  void EnableConflictTracking();

  bool conflict_tracking() const { return track_conflicts_; }

  /// Words per conflict set (= WordCount(var_count)).
  size_t conflict_words() const { return cw_; }

  /// The conflict set of `var`: a bitset over variables, containing every
  /// decision variable responsible (transitively, through propagation) for
  /// some current pruning of var's domain. Always an over-approximation of
  /// "nothing": removing any superset of the listed decisions may restore
  /// values, removing none of them cannot. Valid only with tracking on.
  const uint64_t* conflict_set(Element var) const {
    return words_.data() + conflict_base_ + var * cw_;
  }

  /// Bitset over variables currently assigned by a search decision.
  /// Maintained by Mark/UnmarkDecision, not by the trail: the search calls
  /// them symmetrically around each level.
  const uint64_t* decision_bits() const { return decision_bits_.data(); }

  void MarkDecision(Element var) {
    bitwords::SetBit(decision_bits_.data(), var);
  }
  void UnmarkDecision(Element var) {
    bitwords::ResetBit(decision_bits_.data(), var);
  }

  /// The variable whose domain wiped out in the last failed Revise.
  Element conflict_var() const { return conflict_var_; }

  // -- Failure weights (dom/wdeg variable ordering) ------------------------

  /// Number of constraint wipeouts involving `var`'s scope so far
  /// (dom/wdeg numerator state). Bumped on every failed Revise.
  uint64_t failure_weight(Element var) const { return weights_[var]; }

  /// Halves every failure weight — called on restart so stale conflicts
  /// fade while recent ones keep steering the variable order.
  void DecayWeights();

  // -- Cancellation (parallel search) --------------------------------------

  /// Installs a shared stop flag (or nullptr to detach). While the flag
  /// reads true, revision loops fail fast: Propagate / EstablishGac return
  /// false without finishing the fixpoint. The spurious "wipeout" is safe —
  /// the search observes the flag at its next node and unwinds everything —
  /// but it means results after cancellation must be discarded, which is
  /// exactly what the parallel driver does.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

 private:
  /// True iff B-tuple `t` of c's relation matches c's equality pattern and
  /// every position's value is still in the corresponding domain.
  bool TupleAlive(const Relation& rb, uint32_t t, const Constraint& c) const;

  /// Records word `slot`'s value on the trail unless already recorded in
  /// the current level.
  void SaveWord(size_t slot);

  /// Removes `v` from var's domain through the trail.
  void ClearValue(Element var, Element v);

  /// ORs into vars[i]'s conflict set the explanation for prunings of its
  /// domain by constraint c: the union, over every other scope variable u,
  /// of u's decision bit (if assigned) and u's own conflict set.
  void RecordPruneReason(const Constraint& c, size_t i);

  /// Drains the revision queue to a fixpoint. Clears in-queue flags on both
  /// exits. Returns false iff a domain wiped out.
  bool RunQueue();

  void EnqueueConstraintsOf(Element var, uint32_t except);

  struct TrailEntry {
    size_t slot;
    uint64_t old_word;
  };

  const CspInstance* csp_;
  size_t wpd_;  // words per domain
  size_t cw_;   // words per conflict set (WordCount(var_count))

  /// Flat domains (var_count * wpd_ words), followed — once conflict
  /// tracking is enabled — by the conflict sets (var_count * cw_ words
  /// starting at conflict_base_). One array so SaveWord/PopLevel rewind
  /// both through the same trail.
  std::vector<uint64_t> words_;
  size_t conflict_base_ = 0;      // == var_count * wpd_ once tracking is on
  bool track_conflicts_ = false;
  std::vector<size_t> counts_;    // popcount per domain, kept in sync

  std::vector<uint64_t> decision_bits_;  // cw_ words; see decision_bits()
  std::vector<uint64_t> weights_;        // per-var failure weight (dom/wdeg)
  Element conflict_var_ = 0;             // last wipeout variable
  const std::atomic<bool>* cancel_ = nullptr;  // see set_cancel_flag

  std::vector<TrailEntry> trail_;
  std::vector<size_t> level_marks_;
  std::vector<uint64_t> stamps_;  // per word slot: level id of last save
  uint64_t level_id_ = 1;         // bumped on every Push/Pop; 0 = never

  /// Last-support residues, indexed by Constraint::residue_offset +
  /// slot * domain_size + value. kNoResidue when unknown.
  static constexpr uint32_t kNoResidue = UINT32_MAX;
  std::vector<uint32_t> residues_;

  // Reusable revision queue (FIFO over queue_[head_..]) and scratch.
  std::vector<uint32_t> queue_;
  size_t head_ = 0;
  std::vector<uint8_t> in_queue_;
  std::vector<Element> changed_scratch_;
};

}  // namespace cqcs

#endif  // CQCS_SOLVER_PROPAGATOR_H_
