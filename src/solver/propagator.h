// Trail-based propagation engine for the backtracking solver.
//
// The propagator owns all search-time mutable state so that one instance is
// reused across the entire search with zero per-node allocation:
//
//  * Domains live in one flat uint64_t array (var_count x words-per-domain)
//    with an incrementally maintained popcount per variable. MRV reads a
//    counter instead of popcounting a bitset.
//  * Mutations are undone through a trail: before the first write to a word
//    within a level, the old word is recorded; PopLevel rewinds the trail.
//    Backtracking costs O(words actually changed), not O(total domain bits)
//    as the previous save-everything snapshot did.
//  * Revision is AC-2001/3rm style: for each (constraint, var slot, value)
//    a residue caches the last B-tuple found to support the value. A revise
//    first rechecks the residue (usually still alive); only on failure does
//    it walk the relation's (position, value) tuple list — never the whole
//    relation. Residues are hints, so they survive backtracking unmanaged.
//
// See docs/solver.md for the full architecture.

#ifndef CQCS_SOLVER_PROPAGATOR_H_
#define CQCS_SOLVER_PROPAGATOR_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "solver/csp.h"

namespace cqcs {

class Propagator {
 public:
  explicit Propagator(const CspInstance& csp);

  const CspInstance& csp() const { return *csp_; }

  /// Resets every domain to full and discards the trail (root state).
  void ResetToFull();

  /// Overwrites the domains from `domains` (size var_count, each of size
  /// domain_size) and discards the trail. For the free-function wrappers.
  void LoadDomains(const std::vector<DynamicBitset>& domains);

  /// Copies the current domains out (resizing `*domains` as needed).
  void StoreDomains(std::vector<DynamicBitset>* domains) const;

  // -- Domain queries ------------------------------------------------------

  size_t domain_count(Element var) const { return counts_[var]; }

  bool domain_test(Element var, Element v) const {
    return bitwords::TestBit(words_.data() + var * wpd_, v);
  }

  /// Lowest value in the domain, or DynamicBitset::npos if empty.
  size_t domain_first(Element var) const {
    return bitwords::FindFirst(words_.data() + var * wpd_, wpd_);
  }

  /// Calls fn(value) for every domain value of `var` in increasing order.
  template <typename Fn>
  void ForEachValue(Element var, Fn fn) const {
    bitwords::ForEachSetBit(words_.data() + var * wpd_, wpd_, fn);
  }

  // -- Search interface ----------------------------------------------------

  /// Opens an undo scope. Every domain change until the matching PopLevel
  /// is recorded and undone by it. Levels nest.
  void PushLevel();

  /// Rewinds all domain changes since the matching PushLevel.
  void PopLevel();

  /// Restricts var's domain to {value} (value must be in the domain).
  void Assign(Element var, Element value);

  /// Re-establishes consistency after `seed_var` changed: MAC to fixpoint
  /// when `cascade`, else one revise per constraint of seed_var (forward
  /// checking). Returns false iff a domain wiped out.
  bool Propagate(Element seed_var, bool cascade);

  /// Revises every constraint to a fixpoint (root GAC).
  bool EstablishGac();

  /// Revises one constraint; appends shrunk variables to `*changed` (if
  /// non-null). Returns false iff a domain wiped out.
  bool Revise(uint32_t ci, std::vector<Element>* changed);

 private:
  /// True iff B-tuple `t` of c's relation matches c's equality pattern and
  /// every position's value is still in the corresponding domain.
  bool TupleAlive(const Relation& rb, uint32_t t, const Constraint& c) const;

  /// Records word `slot`'s value on the trail unless already recorded in
  /// the current level.
  void SaveWord(size_t slot);

  /// Removes `v` from var's domain through the trail.
  void ClearValue(Element var, Element v);

  /// Drains the revision queue to a fixpoint. Clears in-queue flags on both
  /// exits. Returns false iff a domain wiped out.
  bool RunQueue();

  void EnqueueConstraintsOf(Element var, uint32_t except);

  struct TrailEntry {
    size_t slot;
    uint64_t old_word;
  };

  const CspInstance* csp_;
  size_t wpd_;  // words per domain

  std::vector<uint64_t> words_;   // var_count * wpd_, flat domains
  std::vector<size_t> counts_;    // popcount per domain, kept in sync

  std::vector<TrailEntry> trail_;
  std::vector<size_t> level_marks_;
  std::vector<uint64_t> stamps_;  // per word slot: level id of last save
  uint64_t level_id_ = 1;         // bumped on every Push/Pop; 0 = never

  /// Last-support residues, indexed by Constraint::residue_offset +
  /// slot * domain_size + value. kNoResidue when unknown.
  static constexpr uint32_t kNoResidue = UINT32_MAX;
  std::vector<uint32_t> residues_;

  // Reusable revision queue (FIFO over queue_[head_..]) and scratch.
  std::vector<uint32_t> queue_;
  size_t head_ = 0;
  std::vector<uint8_t> in_queue_;
  std::vector<Element> changed_scratch_;
};

}  // namespace cqcs

#endif  // CQCS_SOLVER_PROPAGATOR_H_
