#include "solver/backtracking.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "solver/propagator.h"

namespace cqcs {

namespace {

enum class Step {
  kExhausted,  // subtree fully explored
  kPrune,      // solution found below; unwind to the prune boundary
  kStop,       // abort the whole search (callback said stop / node limit)
};

class SearchContext {
 public:
  SearchContext(const CspInstance& csp, const SolveOptions& options,
                std::span<const Element> projection,
                std::function<bool(const Homomorphism&)> on_solution,
                SolveStats* stats)
      : csp_(csp),
        options_(options),
        on_solution_(std::move(on_solution)),
        stats_(stats != nullptr ? stats : &owned_stats_),
        prop_(csp) {
    assigned_.assign(csp_.var_count(), 0);
    in_prefix_.assign(csp_.var_count(), 0);
    // Deduplicated projection prefix: these variables are branched on first,
    // so that after one full solution the search can discard the entire
    // subtree below them (same projection => already reported).
    for (Element v : projection) {
      CQCS_CHECK(v < csp_.var_count());
      if (in_prefix_[v]) continue;
      in_prefix_[v] = 1;
      prefix_.push_back(v);
    }
    prune_boundary_ = projection.empty() ? SIZE_MAX : prefix_.size();
    // One value buffer per depth, sized once: the search itself does not
    // allocate.
    values_by_depth_.resize(csp_.var_count());
    for (auto& values : values_by_depth_) values.reserve(csp_.domain_size());
    solution_.resize(csp_.var_count());
  }

  /// Runs the search; returns the number of callback invocations.
  size_t Run() {
    if (options_.propagation == Propagation::kMac) {
      if (!prop_.EstablishGac()) return solutions_;
    } else {
      // Even under forward checking, empty initial domains mean failure.
      for (Element v = 0; v < csp_.var_count(); ++v) {
        if (prop_.domain_count(v) == 0) return solutions_;
      }
    }
    Search(0);
    return solutions_;
  }

 private:
  Step Search(size_t depth) {
    if (depth == csp_.var_count()) return EmitSolution();
    Element var = SelectVariable(depth);

    std::vector<Element>& values = values_by_depth_[depth];
    values.clear();
    prop_.ForEachValue(
        var, [&](size_t v) { values.push_back(static_cast<Element>(v)); });

    for (Element v : values) {
      ++stats_->nodes;
      if (options_.node_limit != 0 && stats_->nodes > options_.node_limit) {
        stats_->limit_hit = true;
        return Step::kStop;
      }
      prop_.PushLevel();
      prop_.Assign(var, v);
      assigned_[var] = 1;
      bool consistent = prop_.Propagate(
          var, /*cascade=*/options_.propagation == Propagation::kMac);
      Step child = Step::kExhausted;
      if (consistent) {
        child = Search(depth + 1);
      } else {
        ++stats_->backtracks;
      }
      assigned_[var] = 0;
      prop_.PopLevel();
      if (child == Step::kStop) return Step::kStop;
      if (child == Step::kPrune) {
        // A solution was reported below. If this variable is outside the
        // projection prefix, sibling values can only repeat the projection.
        if (depth >= prune_boundary_) return Step::kPrune;
        // Otherwise move on to this variable's next value.
      }
    }
    return Step::kExhausted;
  }

  Step EmitSolution() {
    for (size_t i = 0; i < solution_.size(); ++i) {
      size_t v = prop_.domain_first(static_cast<Element>(i));
      CQCS_CHECK(v != DynamicBitset::npos);
      solution_[i] = static_cast<Element>(v);
    }
    ++solutions_;
    if (!on_solution_(solution_)) return Step::kStop;
    return Step::kPrune;
  }

  Element SelectVariable(size_t depth) {
    if (depth < prefix_.size()) return prefix_[depth];
    Element best = kUnassigned;
    size_t best_size = SIZE_MAX;
    size_t best_degree = 0;
    for (Element v = 0; v < csp_.var_count(); ++v) {
      if (assigned_[v] || in_prefix_[v]) continue;
      if (!options_.mrv) return v;  // lexicographic fallback
      size_t size = prop_.domain_count(v);
      size_t degree = csp_.constraints_of(v).size();
      if (size < best_size || (size == best_size && degree > best_degree)) {
        best = v;
        best_size = size;
        best_degree = degree;
      }
    }
    CQCS_CHECK(best != kUnassigned);
    return best;
  }

  const CspInstance& csp_;
  SolveOptions options_;
  std::function<bool(const Homomorphism&)> on_solution_;
  SolveStats* stats_;
  SolveStats owned_stats_;
  Propagator prop_;
  std::vector<uint8_t> assigned_;
  std::vector<Element> prefix_;
  std::vector<uint8_t> in_prefix_;
  std::vector<std::vector<Element>> values_by_depth_;
  Homomorphism solution_;
  size_t prune_boundary_ = SIZE_MAX;
  size_t solutions_ = 0;
};

// Row hash for projection deduplication.
struct RowHash {
  size_t operator()(const std::vector<Element>& row) const {
    return static_cast<size_t>(Fnv1a64(row.data(), row.size()));
  }
};

}  // namespace

BacktrackingSolver::BacktrackingSolver(const Structure& a, const Structure& b,
                                       SolveOptions options)
    : csp_(a, b), options_(options) {}

std::optional<Homomorphism> BacktrackingSolver::Solve(SolveStats* stats) {
  std::optional<Homomorphism> found;
  SearchContext ctx(
      csp_, options_, {},
      [&found](const Homomorphism& h) {
        found = h;
        return false;  // stop at the first solution
      },
      stats);
  ctx.Run();
  return found;
}

size_t BacktrackingSolver::ForEachSolution(
    const std::function<bool(const Homomorphism&)>& on_solution,
    SolveStats* stats) {
  SearchContext ctx(csp_, options_, {}, on_solution, stats);
  return ctx.Run();
}

std::vector<std::vector<Element>> BacktrackingSolver::EnumerateProjections(
    std::span<const Element> projection, size_t max_results,
    SolveStats* stats) {
  if (max_results == 0) return {};
  std::unordered_set<std::vector<Element>, RowHash> seen;
  std::vector<std::vector<Element>> results;
  SearchContext ctx(
      csp_, options_, projection,
      [&](const Homomorphism& h) {
        std::vector<Element> row(projection.size());
        for (size_t i = 0; i < projection.size(); ++i) row[i] = h[projection[i]];
        // The prefix-pruned search advances a projection variable between
        // reports, so rows repeat only in corner cases (empty projection);
        // the set is cheap insurance for the dedup contract.
        if (seen.insert(row).second) {
          results.push_back(std::move(row));
          if (results.size() >= max_results) return false;
        }
        return true;
      },
      stats);
  ctx.Run();
  return results;
}

size_t BacktrackingSolver::CountSolutions(size_t limit, SolveStats* stats) {
  size_t count = 0;
  SearchContext ctx(
      csp_, options_, {},
      [&count, limit](const Homomorphism&) {
        ++count;
        return count < limit;
      },
      stats);
  ctx.Run();
  return count;
}

bool HasHomomorphism(const Structure& a, const Structure& b) {
  return FindHomomorphism(a, b).has_value();
}

std::optional<Homomorphism> FindHomomorphism(const Structure& a,
                                             const Structure& b) {
  BacktrackingSolver solver(a, b);
  return solver.Solve();
}

}  // namespace cqcs
