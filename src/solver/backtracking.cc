#include "solver/backtracking.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/bitset.h"
#include "common/check.h"
#include "common/hash.h"
#include "solver/propagator.h"

namespace cqcs {

namespace {

enum class Step {
  kExhausted,  // subtree fully explored
  kPrune,      // solution found below; unwind to the prune boundary
  kStop,       // abort the whole search (callback said stop / node limit)
  kRestart,    // restart cutoff reached; unwind to the root and rerun
};

/// Luby sequence, 1-indexed: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8...
uint64_t LubyValue(uint64_t i) {
  for (;;) {
    if (std::has_single_bit(i + 1)) return (i + 1) >> 1;
    i -= std::bit_floor(i + 1) - 1;
  }
}

class SearchContext {
 public:
  SearchContext(const CspInstance& csp, const SolveOptions& options,
                std::span<const Element> projection,
                std::function<bool(const Homomorphism&)> on_solution,
                SolveStats* stats, bool first_solution_only = false)
      : csp_(csp),
        options_(options),
        on_solution_(std::move(on_solution)),
        stats_(stats != nullptr ? stats : &owned_stats_),
        prop_(csp),
        cbj_(options.strategy.backjumping),
        // A restarted run would re-report every solution already delivered,
        // so restarts only apply when the search stops at the first one.
        restarts_(options.strategy.restarts && first_solution_only) {
    assigned_.assign(csp_.var_count(), 0);
    in_prefix_.assign(csp_.var_count(), 0);
    // Deduplicated projection prefix: these variables are branched on first,
    // so that after one full solution the search can discard the entire
    // subtree below them (same projection => already reported).
    for (Element v : projection) {
      CQCS_CHECK(v < csp_.var_count());
      if (in_prefix_[v]) continue;
      in_prefix_[v] = 1;
      prefix_.push_back(v);
    }
    prune_boundary_ = projection.empty() ? SIZE_MAX : prefix_.size();
    // One value buffer per depth, sized once: the search itself does not
    // allocate.
    values_by_depth_.resize(csp_.var_count());
    for (auto& values : values_by_depth_) values.reserve(csp_.domain_size());
    solution_.resize(csp_.var_count());
    if (cbj_) {
      prop_.EnableConflictTracking();
      cw_ = prop_.conflict_words();
      fail_set_.assign(cw_, 0);
      conflict_by_depth_.assign(csp_.var_count(),
                                std::vector<uint64_t>(cw_, 0));
    }
    if (options_.strategy.val_order == ValOrder::kLeastConstraining &&
        csp_.var_count() > 0 && csp_.domain_size() > 0) {
      // The scores are static, so each variable's value order is too:
      // sort once here, and per node just filter the permutation against
      // the live domain instead of re-sorting.
      const uint64_t* scores = csp_.ValueSupportScores().data();
      const size_t d = csp_.domain_size();
      lcv_perm_.resize(csp_.var_count() * d);
      for (Element var = 0; var < csp_.var_count(); ++var) {
        Element* perm = lcv_perm_.data() + var * d;
        for (size_t v = 0; v < d; ++v) perm[v] = static_cast<Element>(v);
        const uint64_t* row = scores + var * d;
        // Least-constraining first: higher static support count means more
        // live B-tuples in every scope the value touches. stable_sort
        // keeps ties in lex order, so runs are deterministic.
        std::stable_sort(perm, perm + d, [row](Element x, Element y) {
          return row[x] > row[y];
        });
      }
    }
  }

  /// Runs the search; returns the number of callback invocations.
  size_t Run() {
    if (options_.propagation == Propagation::kMac) {
      if (!prop_.EstablishGac()) return solutions_;
    } else {
      // Even under forward checking, empty initial domains mean failure.
      for (Element v = 0; v < csp_.var_count(); ++v) {
        if (prop_.domain_count(v) == 0) return solutions_;
      }
    }
    const uint64_t base = std::max<uint64_t>(1, options_.strategy.restart_base);
    for (uint64_t run = 1;; ++run) {
      restart_cutoff_ = restarts_ ? base * LubyValue(run) : 0;
      run_start_nodes_ = stats_->nodes;
      if (Search(0) != Step::kRestart) break;
      // The node counter is cumulative: a restart unwinds the trail, not
      // the accounting, so node_limit still bounds the whole search.
      ++stats_->restarts;
      prop_.DecayWeights();
    }
    return solutions_;
  }

 private:
  Step Search(size_t depth) {
    if (depth == csp_.var_count()) return EmitSolution();
    Element var = SelectVariable(depth);

    std::vector<Element>& values = values_by_depth_[depth];
    values.clear();
    if (lcv_perm_.empty()) {
      prop_.ForEachValue(
          var, [&](size_t v) { values.push_back(static_cast<Element>(v)); });
    } else {
      // Walk the precomputed least-constraining order, keeping live values.
      const Element* perm = lcv_perm_.data() + var * csp_.domain_size();
      for (size_t i = 0; i < csp_.domain_size(); ++i) {
        if (prop_.domain_test(var, perm[i])) values.push_back(perm[i]);
      }
    }
    if (cbj_) {
      std::fill(conflict_by_depth_[depth].begin(),
                conflict_by_depth_[depth].end(), 0);
    }
    // Once a solution is reported anywhere below this frame, conflict sets
    // stop being grounds for skipping: sibling values may lead to *other*
    // solutions, which a pure-conflict argument says nothing about. The
    // frame then backtracks chronologically and reports no conflict upward.
    bool solution_below = false;

    for (Element v : values) {
      if (restarts_ &&
          stats_->nodes - run_start_nodes_ >= restart_cutoff_) {
        return Step::kRestart;
      }
      ++stats_->nodes;
      if (options_.node_limit != 0 && stats_->nodes > options_.node_limit) {
        stats_->limit_hit = true;
        return Step::kStop;
      }
      prop_.PushLevel();
      if (cbj_) prop_.MarkDecision(var);
      prop_.Assign(var, v);
      assigned_[var] = 1;
      bool consistent = prop_.Propagate(
          var, /*cascade=*/options_.propagation == Propagation::kMac);
      Step child = Step::kExhausted;
      const size_t solutions_before = solutions_;
      if (consistent) {
        child = Search(depth + 1);
      } else {
        ++stats_->backtracks;
        if (cbj_) {
          // The wipeout's explanation: every decision responsible for the
          // emptied domain. Valid to read before PopLevel rewinds it.
          const Element wiped = prop_.conflict_var();
          const uint64_t* cs = prop_.conflict_set(wiped);
          std::copy(cs, cs + cw_, fail_set_.begin());
          // A wiped *decision* variable lost its other values to its own
          // Assign, which records no reason — charge the decision itself.
          if (bitwords::TestBit(prop_.decision_bits(), wiped)) {
            bitwords::SetBit(fail_set_.data(), wiped);
          }
          fail_is_conflict_ = true;
          jump_chain_ = 0;
          uint64_t size = 0;
          for (size_t wi = 0; wi < cw_; ++wi) {
            size += static_cast<uint64_t>(
                std::popcount(fail_set_[wi] & prop_.decision_bits()[wi]));
          }
          stats_->max_conflict_set =
              std::max(stats_->max_conflict_set, size);
        }
      }
      assigned_[var] = 0;
      if (cbj_) prop_.UnmarkDecision(var);
      prop_.PopLevel();
      if (child == Step::kStop || child == Step::kRestart) return child;
      if (solutions_ != solutions_before) solution_below = true;
      if (child == Step::kPrune) {
        // A solution was reported below. If this variable is outside the
        // projection prefix, sibling values can only repeat the projection.
        if (depth >= prune_boundary_) {
          fail_is_conflict_ = false;
          return Step::kPrune;
        }
        continue;  // otherwise move on to this variable's next value
      }
      // child == kExhausted: a failed subtree (or failed propagation, which
      // filled fail_set_ above). Conflict-directed backjumping: if the
      // failure's explanation does not mention this frame's variable, no
      // sibling value can change it — return the same conflict upward,
      // skipping the rest of this frame's values.
      if (cbj_ && !solution_below) {
        if (!fail_is_conflict_) {
          solution_below = true;  // deeper frame already saw a solution
        } else if (!bitwords::TestBit(fail_set_.data(), var)) {
          ++stats_->backjumps;
          ++jump_chain_;
          stats_->longest_backjump =
              std::max(stats_->longest_backjump, jump_chain_);
          return Step::kExhausted;  // fail_set_ passes through unchanged
        } else {
          jump_chain_ = 0;
          bitwords::ResetBit(fail_set_.data(), var);
          uint64_t* acc = conflict_by_depth_[depth].data();
          for (size_t wi = 0; wi < cw_; ++wi) acc[wi] |= fail_set_[wi];
        }
      }
    }
    if (cbj_ && !solution_below) {
      // Every value failed: the frame's conflict is the union of the value
      // conflicts plus the reasons this variable's other values were pruned
      // before branching.
      const uint64_t* own = prop_.conflict_set(var);
      const uint64_t* acc = conflict_by_depth_[depth].data();
      for (size_t wi = 0; wi < cw_; ++wi) fail_set_[wi] = acc[wi] | own[wi];
      fail_is_conflict_ = true;
      jump_chain_ = 0;
    } else {
      fail_is_conflict_ = false;
    }
    return Step::kExhausted;
  }

  Step EmitSolution() {
    for (size_t i = 0; i < solution_.size(); ++i) {
      size_t v = prop_.domain_first(static_cast<Element>(i));
      CQCS_CHECK(v != DynamicBitset::npos);
      solution_[i] = static_cast<Element>(v);
    }
    ++solutions_;
    if (!on_solution_(solution_)) return Step::kStop;
    return Step::kPrune;
  }

  // One tight scan per heuristic: the selection loop runs at every search
  // node, so the strategy dispatch stays outside it.
  Element SelectVariable(size_t depth) {
    if (depth < prefix_.size()) return prefix_[depth];
    switch (options_.strategy.var_order) {
      case VarOrder::kLex:
        return SelectLex();
      case VarOrder::kMrv:
        return SelectMrv();
      case VarOrder::kDomWdeg:
        return SelectDomWdeg();
    }
    CQCS_CHECK(false);
  }

  Element SelectLex() const {
    for (Element v = 0; v < csp_.var_count(); ++v) {
      if (!assigned_[v] && !in_prefix_[v]) return v;
    }
    CQCS_CHECK(false);
  }

  Element SelectMrv() const {
    Element best = kUnassigned;
    size_t best_size = SIZE_MAX;
    size_t best_degree = 0;
    for (Element v = 0; v < csp_.var_count(); ++v) {
      if (assigned_[v] || in_prefix_[v]) continue;
      const size_t size = prop_.domain_count(v);
      const size_t degree = csp_.constraints_of(v).size();
      if (size < best_size || (size == best_size && degree > best_degree)) {
        best = v;
        best_size = size;
        best_degree = degree;
      }
    }
    CQCS_CHECK(best != kUnassigned);
    return best;
  }

  Element SelectDomWdeg() const {
    Element best = kUnassigned;
    size_t best_size = SIZE_MAX;
    uint64_t best_weight = 1;
    for (Element v = 0; v < csp_.var_count(); ++v) {
      if (assigned_[v] || in_prefix_[v]) continue;
      // Minimize size / weight without division: size_v * w_best <
      // size_best * w_v. Weights are offset by 1 so conflict-free variables
      // compare by domain size alone.
      const size_t size = prop_.domain_count(v);
      const uint64_t weight = prop_.failure_weight(v) + 1;
      if (best == kUnassigned ||
          static_cast<unsigned __int128>(size) * best_weight <
              static_cast<unsigned __int128>(best_size) * weight) {
        best = v;
        best_size = size;
        best_weight = weight;
      }
    }
    CQCS_CHECK(best != kUnassigned);
    return best;
  }

  const CspInstance& csp_;
  SolveOptions options_;
  std::function<bool(const Homomorphism&)> on_solution_;
  SolveStats* stats_;
  SolveStats owned_stats_;
  Propagator prop_;
  const bool cbj_;
  const bool restarts_;
  std::vector<uint8_t> assigned_;
  std::vector<Element> prefix_;
  std::vector<uint8_t> in_prefix_;
  std::vector<std::vector<Element>> values_by_depth_;
  Homomorphism solution_;
  size_t prune_boundary_ = SIZE_MAX;
  size_t solutions_ = 0;
  /// Per-variable value permutation in least-constraining order (empty
  /// unless ValOrder::kLeastConstraining): var_count x domain_size, flat.
  std::vector<Element> lcv_perm_;

  // CBJ plumbing: a failed child leaves its conflict set in fail_set_ (valid
  // only when fail_is_conflict_); conflict_by_depth_ accumulates the value
  // conflicts of the frame at each depth; jump_chain_ measures consecutive
  // skipped levels for the longest_backjump stat.
  size_t cw_ = 0;
  std::vector<uint64_t> fail_set_;
  bool fail_is_conflict_ = false;
  std::vector<std::vector<uint64_t>> conflict_by_depth_;
  uint64_t jump_chain_ = 0;

  // Restart bookkeeping for the current run.
  uint64_t restart_cutoff_ = 0;
  uint64_t run_start_nodes_ = 0;
};

// Row hash for projection deduplication.
struct RowHash {
  size_t operator()(const std::vector<Element>& row) const {
    return static_cast<size_t>(Fnv1a64(row.data(), row.size()));
  }
};

}  // namespace

BacktrackingSolver::BacktrackingSolver(const Structure& a, const Structure& b,
                                       SolveOptions options)
    : csp_(a, b), options_(options) {}

std::optional<Homomorphism> BacktrackingSolver::Solve(SolveStats* stats) {
  std::optional<Homomorphism> found;
  SearchContext ctx(
      csp_, options_, {},
      [&found](const Homomorphism& h) {
        found = h;
        return false;  // stop at the first solution
      },
      stats, /*first_solution_only=*/true);
  ctx.Run();
  return found;
}

size_t BacktrackingSolver::ForEachSolution(
    const std::function<bool(const Homomorphism&)>& on_solution,
    SolveStats* stats) {
  SearchContext ctx(csp_, options_, {}, on_solution, stats);
  return ctx.Run();
}

std::vector<std::vector<Element>> BacktrackingSolver::EnumerateProjections(
    std::span<const Element> projection, size_t max_results,
    SolveStats* stats) {
  if (max_results == 0) return {};
  std::unordered_set<std::vector<Element>, RowHash> seen;
  std::vector<std::vector<Element>> results;
  SearchContext ctx(
      csp_, options_, projection,
      [&](const Homomorphism& h) {
        std::vector<Element> row(projection.size());
        for (size_t i = 0; i < projection.size(); ++i) row[i] = h[projection[i]];
        // The prefix-pruned search advances a projection variable between
        // reports, so rows repeat only in corner cases (empty projection);
        // the set is cheap insurance for the dedup contract.
        if (seen.insert(row).second) {
          results.push_back(std::move(row));
          if (results.size() >= max_results) return false;
        }
        return true;
      },
      stats);
  ctx.Run();
  return results;
}

size_t BacktrackingSolver::CountSolutions(size_t limit, SolveStats* stats) {
  size_t count = 0;
  SearchContext ctx(
      csp_, options_, {},
      [&count, limit](const Homomorphism&) {
        ++count;
        return count < limit;
      },
      stats);
  ctx.Run();
  return count;
}

bool HasHomomorphism(const Structure& a, const Structure& b) {
  return FindHomomorphism(a, b).has_value();
}

std::optional<Homomorphism> FindHomomorphism(const Structure& a,
                                             const Structure& b) {
  BacktrackingSolver solver(a, b);
  return solver.Solve();
}

}  // namespace cqcs
