#include "solver/backtracking.h"

#include <unordered_set>

#include "common/hash.h"
#include "solver/parallel.h"
#include "solver/search_context.h"

namespace cqcs {

namespace {

using solver_internal::ParallelSearch;
using solver_internal::ResolveThreadCount;
using solver_internal::SearchContext;

// Row hash for projection deduplication.
struct RowHash {
  size_t operator()(const std::vector<Element>& row) const {
    return static_cast<size_t>(Fnv1a64(row.data(), row.size()));
  }
};

/// One search, sequential or parallel by options.num_threads. The callback
/// contract is identical either way (the parallel driver serializes
/// deliveries), so every entry point builds one closure and routes here.
size_t RunSearch(const CspInstance& csp, const SolveOptions& options,
                 std::span<const Element> projection,
                 const std::function<bool(const Homomorphism&)>& on_solution,
                 SolveStats* stats, bool first_solution_only) {
  if (ResolveThreadCount(options.num_threads) > 1) {
    return ParallelSearch(csp, options, projection, on_solution, stats,
                          first_solution_only);
  }
  SearchContext ctx(csp, options, projection, on_solution, stats,
                    first_solution_only);
  return ctx.Run();
}

}  // namespace

BacktrackingSolver::BacktrackingSolver(const Structure& a, const Structure& b,
                                       SolveOptions options)
    : owned_csp_(std::in_place, a, b), csp_(&*owned_csp_), options_(options) {}

BacktrackingSolver::BacktrackingSolver(const CspInstance* csp,
                                       SolveOptions options)
    : csp_(csp), options_(options) {}

std::optional<Homomorphism> BacktrackingSolver::Solve(SolveStats* stats) {
  std::optional<Homomorphism> found;
  RunSearch(
      *csp_, options_, {},
      [&found](const Homomorphism& h) {
        found = h;
        return false;  // stop at the first solution
      },
      stats, /*first_solution_only=*/true);
  return found;
}

size_t BacktrackingSolver::ForEachSolution(
    const std::function<bool(const Homomorphism&)>& on_solution,
    SolveStats* stats) {
  return RunSearch(*csp_, options_, {}, on_solution, stats,
                   /*first_solution_only=*/false);
}

std::vector<std::vector<Element>> BacktrackingSolver::EnumerateProjections(
    std::span<const Element> projection, size_t max_results,
    SolveStats* stats) {
  if (max_results == 0) return {};
  std::unordered_set<std::vector<Element>, RowHash> seen;
  std::vector<std::vector<Element>> results;
  RunSearch(
      *csp_, options_, projection,
      [&](const Homomorphism& h) {
        std::vector<Element> row(projection.size());
        for (size_t i = 0; i < projection.size(); ++i) row[i] = h[projection[i]];
        // The prefix-pruned search advances a projection variable between
        // reports, so rows repeat only in corner cases (empty projection —
        // and, in parallel mode, subtrees that were donated before the
        // donor's solution pruned them); the set enforces the dedup
        // contract either way.
        if (seen.insert(row).second) {
          results.push_back(std::move(row));
          if (results.size() >= max_results) return false;
        }
        return true;
      },
      stats, /*first_solution_only=*/false);
  return results;
}

size_t BacktrackingSolver::CountSolutions(size_t limit, SolveStats* stats) {
  size_t count = 0;
  RunSearch(
      *csp_, options_, {},
      [&count, limit](const Homomorphism&) {
        ++count;
        return count < limit;
      },
      stats, /*first_solution_only=*/false);
  return count;
}

// HasHomomorphism / FindHomomorphism are defined in api/engine.cc: the
// conveniences route through the HomEngine front door.

}  // namespace cqcs
