#!/usr/bin/env bash
# One-command verification gate. Runs, in order:
#
#   1. plain build      Release, library -Werror (the nodiscard sweep and
#                       warning set are enforced here), full tier-1 ctest
#   2. lint             ctest -L lint in the same tree (rule unit tests +
#                       the cqcs_lint sweep over src/ + tools/)
#   3. sanitizers       the ROADMAP.md sanitizer map: -L serve under TSan,
#                       -L durable under ASan and UBSan, -L solver-parallel
#                       under TSan
#
# `--quick` stops after step 2 — the sanitizer builds triple the wall time
# and exist to gate merges, not edit-compile loops.
#
# Build trees are kept (build-check, build-check-tsan, ...) so re-runs are
# incremental. Exit nonzero at the first failing step.

set -u

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
FAILED=0

step() {
  echo
  echo "==== $* ===="
}

run() {
  "$@"
  local rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAILED (exit $rc): $*" >&2
    FAILED=1
  fi
  return $rc
}

# ---- 1. plain build + tier-1 tests ----------------------------------------
step "build (Release, -Werror library)"
run cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release || exit 1
run cmake --build build-check -j "$JOBS" || exit 1

step "tier-1 ctest"
run ctest --test-dir build-check --output-on-failure -j "$JOBS" || exit 1

# ---- 2. lint ---------------------------------------------------------------
step "lint (ctest -L lint)"
run ctest --test-dir build-check --output-on-failure -L lint || exit 1

if [ "$QUICK" -eq 1 ]; then
  echo
  echo "OK (quick: sanitizer suites skipped)"
  exit 0
fi

# ---- 3. sanitizer map (ROADMAP.md) ----------------------------------------
# label-regex pairs per sanitizer; serve and solver-parallel are the
# thread-heavy nets, durable parses arbitrarily corrupt bytes.
sanitize_step() {
  local sanitizer="$1" labels="$2"
  local dir="build-check-$sanitizer"
  step "sanitizer: $sanitizer (labels: $labels)"
  run cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCQCS_SANITIZE="$sanitizer" || return 1
  run cmake --build "$dir" -j "$JOBS" || return 1
  run ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L "$labels"
}

sanitize_step thread "serve|solver-parallel|poly"
sanitize_step address "durable|robust"
sanitize_step undefined "durable"

echo
if [ "$FAILED" -ne 0 ]; then
  echo "FAILED: at least one step above failed"
  exit 1
fi
echo "OK (all gates passed)"
